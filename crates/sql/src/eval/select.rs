//! `SELECT` evaluation: cartesian products, projection, DISTINCT, and
//! single-group aggregates.

use std::collections::BTreeSet;

use starling_storage::{Row, Value};

use crate::ast::{Aggregate, Expr, FromItem, OrderItem, SelectItem, SelectStmt, TableRef};
use crate::error::SqlError;
use crate::eval::env::{Env, Frame, RowBinding};
use crate::eval::expr::{eval_bool, eval_expr, is_true};

/// The result of a query: output column names and rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultSet {
    /// Output column names (aliases, column names, or `col1`, `col2`, ...).
    pub columns: Vec<String>,
    /// Result rows in deterministic order.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }
}

/// Evaluates a `SELECT` in the given environment (which supplies outer
/// frames for correlated subqueries).
pub fn eval_select(s: &SelectStmt, env: &mut Env<'_>) -> Result<ResultSet, SqlError> {
    // Materialize each from-item's rows up front.
    let sources = materialize_from(&s.from, env)?;

    // Enumerate matching frames (combinations passing WHERE).
    let mut frames: Vec<Frame> = Vec::new();
    enumerate(
        &sources,
        0,
        &mut Vec::new(),
        env,
        s.where_clause.as_ref(),
        &mut frames,
    )?;

    let aggregated = s.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        SelectItem::Wildcard => false,
    });

    let columns = output_columns(s, env)?;
    let grouped = aggregated || !s.group_by.is_empty() || s.having.is_some();

    let mut rows: Vec<Row> = Vec::new();
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    if grouped {
        // Partition the matching frames into groups; with no GROUP BY the
        // whole result is one group (and aggregates over an empty input
        // still yield one row, per SQL).
        let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<Frame>> =
            std::collections::BTreeMap::new();
        if s.group_by.is_empty() {
            groups.insert(Vec::new(), frames);
        } else {
            for frame in frames {
                env.push(frame.clone());
                let key: Result<Vec<Value>, SqlError> =
                    s.group_by.iter().map(|e| eval_expr(e, env)).collect();
                env.pop();
                groups.entry(key?).or_default().push(frame);
            }
        }
        for (key, group) in groups {
            if let Some(h) = &s.having {
                let v = eval_grouped_expr(h, env, &group, &s.group_by, &key)?;
                if !is_true(&v) {
                    continue;
                }
            }
            let mut row = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::eval("cannot use `*` with aggregates or GROUP BY"))
                    }
                    SelectItem::Expr { expr, .. } => {
                        row.push(eval_grouped_expr(expr, env, &group, &s.group_by, &key)?)
                    }
                }
            }
            let k: Result<Vec<Value>, SqlError> = s
                .order_by
                .iter()
                .map(|o| eval_grouped_expr(&o.expr, env, &group, &s.group_by, &key))
                .collect();
            rows.push(row);
            sort_keys.push(k?);
        }
    } else {
        for frame in frames {
            env.push(frame);
            let r = project(s, env);
            let k = eval_sort_keys(&s.order_by, env);
            env.pop();
            rows.push(r?);
            sort_keys.push(k?);
        }
    }

    if s.distinct {
        // DISTINCT applies to the projected output; keep the first
        // occurrence's sort key.
        let mut seen = BTreeSet::new();
        let mut kept_rows = Vec::with_capacity(rows.len());
        let mut kept_keys = Vec::with_capacity(rows.len());
        for (row, key) in rows.into_iter().zip(sort_keys) {
            if seen.contains(&row) {
                continue;
            }
            seen.insert(row.clone());
            kept_rows.push(row);
            kept_keys.push(key);
        }
        rows = kept_rows;
        sort_keys = kept_keys;
    }

    if !s.order_by.is_empty() {
        let mut indexed: Vec<usize> = (0..rows.len()).collect();
        indexed.sort_by(|&a, &b| {
            for (i, item) in s.order_by.iter().enumerate() {
                // The structural total order (NULLs first) stands in for
                // SQL's implementation-defined NULL placement.
                let ord = sort_keys[a][i].cmp(&sort_keys[b][i]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        // Apply the permutation by moving rows out (each index appears
        // exactly once), not by cloning every row.
        rows = indexed
            .into_iter()
            .map(|i| std::mem::take(&mut rows[i]))
            .collect();
    }

    Ok(ResultSet { columns, rows })
}

/// Evaluates the `ORDER BY` keys for the current frame.
fn eval_sort_keys(order_by: &[OrderItem], env: &mut Env<'_>) -> Result<Vec<Value>, SqlError> {
    order_by.iter().map(|o| eval_expr(&o.expr, env)).collect()
}

/// Rows and binding metadata of one from-item.
struct Source {
    name: String,
    table: String,
    rows: Vec<Row>,
}

fn materialize_from(from: &[FromItem], env: &Env<'_>) -> Result<Vec<Source>, SqlError> {
    let mut out = Vec::with_capacity(from.len());
    for item in from {
        let (table, rows) = match &item.table {
            TableRef::Base(t) => {
                let tbl = env.ctx.db.table(t)?;
                (
                    t.clone(),
                    tbl.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
                )
            }
            TableRef::Transition(tt) => {
                let Some(binding) = env.ctx.transitions else {
                    return Err(SqlError::eval(format!(
                        "transition table `{}` referenced outside a rule",
                        tt.name()
                    )));
                };
                (binding.table.clone(), binding.rows(*tt).to_vec())
            }
        };
        out.push(Source {
            name: item.binding().to_owned(),
            table,
            rows,
        });
    }
    Ok(out)
}

/// Depth-first enumeration of the cartesian product, filtering with the
/// `WHERE` clause at the leaves.
fn enumerate(
    sources: &[Source],
    idx: usize,
    partial: &mut Frame,
    env: &mut Env<'_>,
    where_clause: Option<&Expr>,
    out: &mut Vec<Frame>,
) -> Result<(), SqlError> {
    if idx == sources.len() {
        let keep = match where_clause {
            None => true,
            Some(w) => {
                env.push(partial.clone());
                let v = eval_bool(w, env);
                env.pop();
                is_true(&v?)
            }
        };
        if keep {
            out.push(partial.clone());
        }
        return Ok(());
    }
    let src = &sources[idx];
    for row in &src.rows {
        partial.push(RowBinding {
            name: src.name.clone(),
            table: src.table.clone(),
            row: row.clone(),
        });
        enumerate(sources, idx + 1, partial, env, where_clause, out)?;
        partial.pop();
    }
    Ok(())
}

/// Projects the select list against the innermost frame.
fn project(s: &SelectStmt, env: &mut Env<'_>) -> Result<Row, SqlError> {
    let mut row = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Wildcard => expand_wildcard(env, &mut row)?,
            SelectItem::Expr { expr, .. } => row.push(eval_expr(expr, env)?),
        }
    }
    Ok(row)
}

fn expand_wildcard(env: &mut Env<'_>, row: &mut Row) -> Result<(), SqlError> {
    // The innermost frame holds the from-item bindings in order.
    let bindings: Vec<(String, Row)> = {
        let frame = env
            .innermost()
            .ok_or_else(|| SqlError::eval("`*` with no from clause"))?;
        frame
            .iter()
            .map(|b| (b.table.clone(), b.row.clone()))
            .collect()
    };
    for (_, r) in bindings {
        row.extend(r);
    }
    Ok(())
}

/// Output column names for a select.
fn output_columns(s: &SelectStmt, env: &Env<'_>) -> Result<Vec<String>, SqlError> {
    let mut out = Vec::new();
    for (i, item) in s.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for fi in &s.from {
                    let table = match &fi.table {
                        TableRef::Base(t) => t.clone(),
                        TableRef::Transition(_) => match env.ctx.transitions {
                            Some(b) => b.table.clone(),
                            None => return Err(SqlError::eval("transition table outside a rule")),
                        },
                    };
                    let schema = env.ctx.db.catalog().table(&table)?;
                    out.extend(schema.column_names().map(str::to_owned));
                }
            }
            SelectItem::Expr { expr, alias } => out.push(match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(c) => c.column.clone(),
                    _ => format!("col{}", i + 1),
                },
            }),
        }
    }
    Ok(out)
}

/// Whether an expression contains an aggregate call (at this query level;
/// subqueries have their own levels).
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate { .. } => true,
        Expr::Literal(_) | Expr::Column(_) => false,
        Expr::Binary { lhs, rhs, .. } => contains_aggregate(lhs) || contains_aggregate(rhs),
        Expr::Neg(x) | Expr::Not(x) => contains_aggregate(x),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::InSelect { expr, .. } => contains_aggregate(expr),
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::Exists(_) | Expr::ScalarSubquery(_) => false,
    }
}

/// Evaluates an expression in grouped mode: aggregate nodes are computed
/// over `group` (the group's frames); a subexpression syntactically equal
/// to a `GROUP BY` key evaluates to the group's key value; everything else
/// must be group-invariant (literals and compositions of the above).
fn eval_grouped_expr(
    e: &Expr,
    env: &mut Env<'_>,
    group: &[Frame],
    group_by: &[Expr],
    key: &[Value],
) -> Result<Value, SqlError> {
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Ok(key[i].clone());
    }
    match e {
        Expr::Aggregate { func, arg } => eval_aggregate(*func, arg.as_deref(), env, group),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, lhs, rhs } => {
            // Rebuild a literal expression from the grouped operands so the
            // 3VL machinery in expr.rs applies uniformly.
            let l = eval_grouped_expr(lhs, env, group, group_by, key)?;
            let r = eval_grouped_expr(rhs, env, group, group_by, key)?;
            let synth = Expr::bin(*op, Expr::Literal(l), Expr::Literal(r));
            eval_expr(&synth, env)
        }
        Expr::Neg(x) => {
            let v = eval_grouped_expr(x, env, group, group_by, key)?;
            eval_expr(&Expr::Neg(Box::new(Expr::Literal(v))), env)
        }
        Expr::Not(x) => {
            let v = eval_grouped_expr(x, env, group, group_by, key)?;
            eval_expr(&Expr::Not(Box::new(Expr::Literal(v))), env)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_grouped_expr(expr, env, group, group_by, key)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Column(c) => Err(SqlError::eval(format!(
            "column `{c}` must appear in GROUP BY or inside an aggregate"
        ))),
        _ => Err(SqlError::eval(
            "unsupported expression in a grouped select list",
        )),
    }
}

fn eval_aggregate(
    func: Aggregate,
    arg: Option<&Expr>,
    env: &mut Env<'_>,
    group: &[Frame],
) -> Result<Value, SqlError> {
    if func == Aggregate::CountStar {
        return Ok(Value::Int(group.len() as i64));
    }
    let arg = arg.ok_or_else(|| SqlError::eval("aggregate missing argument"))?;
    let mut values = Vec::new();
    for frame in group {
        env.push(frame.clone());
        let v = eval_expr(arg, env);
        env.pop();
        let v = v?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match func {
        Aggregate::Count => Ok(Value::Int(values.len() as i64)),
        Aggregate::Min => Ok(values
            .iter()
            .try_fold(None::<Value>, |acc, v| sql_extreme(acc, v, true))?
            .unwrap_or(Value::Null)),
        Aggregate::Max => Ok(values
            .iter()
            .try_fold(None::<Value>, |acc, v| sql_extreme(acc, v, false))?
            .unwrap_or(Value::Null)),
        Aggregate::Sum | Aggregate::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut fsum = 0.0;
            let mut isum: i64 = 0;
            for v in &values {
                match v {
                    Value::Int(i) => {
                        isum = isum
                            .checked_add(*i)
                            .ok_or_else(|| SqlError::eval("integer overflow in SUM"))?;
                        fsum += *i as f64;
                    }
                    Value::Float(f) => {
                        all_int = false;
                        fsum += f;
                    }
                    v => {
                        return Err(SqlError::eval(format!(
                            "cannot aggregate non-numeric value {v}"
                        )))
                    }
                }
            }
            if func == Aggregate::Sum {
                Ok(if all_int {
                    Value::Int(isum)
                } else {
                    Value::Float(fsum)
                })
            } else {
                Ok(Value::Float(fsum / values.len() as f64))
            }
        }
        Aggregate::CountStar => unreachable!("handled above"),
    }
}

fn sql_extreme(acc: Option<Value>, v: &Value, want_min: bool) -> Result<Option<Value>, SqlError> {
    match acc {
        None => Ok(Some(v.clone())),
        Some(a) => match a.sql_cmp(v) {
            Some(std::cmp::Ordering::Greater) if want_min => Ok(Some(v.clone())),
            Some(std::cmp::Ordering::Less) if !want_min => Ok(Some(v.clone())),
            Some(_) => Ok(Some(a)),
            None => Err(SqlError::eval("incomparable values in MIN/MAX")),
        },
    }
}

#[cfg(test)]
mod tests {
    use starling_storage::{ColumnDef, Database, TableSchema, ValueType};

    use crate::ast::{Action, Statement, TransitionTable};
    use crate::eval::env::{EvalCtx, TransitionBinding};
    use crate::parser::parse_statement;

    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::nullable("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for (a, b) in [(1, Some(10)), (2, None), (3, Some(30)), (3, Some(30))] {
            d.insert(
                "t",
                vec![Value::Int(a), b.map(Value::Int).unwrap_or(Value::Null)],
            )
            .unwrap();
        }
        d
    }

    fn query_with(
        d: &Database,
        tb: Option<&TransitionBinding>,
        src: &str,
    ) -> Result<ResultSet, SqlError> {
        let Statement::Dml(Action::Select(s)) = parse_statement(src).unwrap() else {
            panic!()
        };
        let ctx = EvalCtx {
            db: d,
            transitions: tb,
        };
        let mut env = Env::new(&ctx);
        eval_select(&s, &mut env)
    }

    fn query(d: &Database, src: &str) -> ResultSet {
        query_with(d, None, src).unwrap()
    }

    #[test]
    fn simple_projection_and_filter() {
        let d = db();
        let rs = query(&d, "select a from t where b is not null");
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.columns, vec!["a"]);
    }

    #[test]
    fn wildcard() {
        let d = db();
        let rs = query(&d, "select * from t");
        assert_eq!(rs.columns, vec!["a", "b"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn distinct() {
        let d = db();
        let rs = query(&d, "select distinct a from t");
        assert_eq!(rs.rows.len(), 3);
        let rs = query(&d, "select distinct * from t");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn aggregates() {
        let d = db();
        let rs = query(
            &d,
            "select count(*), count(b), sum(a), min(b), max(b), avg(a) from t",
        );
        assert_eq!(
            rs.rows,
            vec![vec![
                Value::Int(4),
                Value::Int(3),
                Value::Int(9),
                Value::Int(10),
                Value::Int(30),
                Value::Float(9.0 / 4.0),
            ]]
        );
    }

    #[test]
    fn aggregate_over_empty_group() {
        let d = db();
        let rs = query(&d, "select count(*), sum(a), min(a) from t where a > 100");
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    }

    #[test]
    fn aggregate_arithmetic() {
        let d = db();
        let rs = query(&d, "select sum(a) + count(*) from t");
        assert_eq!(rs.rows, vec![vec![Value::Int(13)]]);
    }

    #[test]
    fn mixing_plain_and_aggregate_rejected() {
        let d = db();
        assert!(query_with(&d, None, "select a, count(*) from t").is_err());
        assert!(query_with(&d, None, "select *, count(*) from t").is_err());
    }

    #[test]
    fn cross_product_count() {
        let d = db();
        let rs = query(&d, "select x.a from t x, t y");
        assert_eq!(rs.rows.len(), 16);
    }

    #[test]
    fn select_without_from() {
        let d = db();
        let rs = query(&d, "select 1 + 1, 'x'");
        assert_eq!(rs.rows, vec![vec![Value::Int(2), Value::str("x")]]);
        assert_eq!(rs.columns, vec!["col1", "col2"]);
    }

    #[test]
    fn transition_table_scan() {
        let d = db();
        let mut tb = TransitionBinding::empty("t");
        tb.inserted.push(vec![Value::Int(7), Value::Int(70)]);
        assert_eq!(tb.rows(TransitionTable::Inserted).len(), 1);
        let rs = query_with(&d, Some(&tb), "select a from inserted").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
        // Without a binding, transition reference fails.
        assert!(query_with(&d, None, "select a from inserted").is_err());
    }

    #[test]
    fn null_where_excludes() {
        let d = db();
        // b > 5 is unknown for the NULL row — excluded.
        let rs = query(&d, "select a from t where b > 5");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn column_aliases() {
        let d = db();
        let rs = query(&d, "select a as x, b from t where a = 1");
        assert_eq!(rs.columns, vec!["x", "b"]);
    }
}

#[cfg(test)]
mod order_by_tests {
    use starling_storage::{ColumnDef, Database, TableSchema, ValueType};

    use crate::ast::{Action, Statement};
    use crate::eval::env::EvalCtx;
    use crate::parser::parse_statement;

    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::nullable("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for (a, b) in [(3, Some(30)), (1, Some(10)), (2, None), (1, Some(5))] {
            d.insert(
                "t",
                vec![Value::Int(a), b.map(Value::Int).unwrap_or(Value::Null)],
            )
            .unwrap();
        }
        d
    }

    fn query(d: &Database, src: &str) -> ResultSet {
        let Statement::Dml(Action::Select(s)) = parse_statement(src).unwrap() else {
            panic!()
        };
        let ctx = EvalCtx {
            db: d,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        eval_select(&s, &mut env).unwrap()
    }

    fn col_a(rs: &ResultSet) -> Vec<i64> {
        rs.rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => -999,
            })
            .collect()
    }

    #[test]
    fn ascending_and_descending() {
        let d = db();
        assert_eq!(
            col_a(&query(&d, "select a from t order by a")),
            vec![1, 1, 2, 3]
        );
        assert_eq!(
            col_a(&query(&d, "select a from t order by a desc")),
            vec![3, 2, 1, 1]
        );
    }

    #[test]
    fn multi_key_with_tiebreak() {
        let d = db();
        let rs = query(&d, "select a, b from t order by a asc, b desc");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(3), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let d = db();
        let rs = query(&d, "select b from t order by b");
        assert_eq!(rs.rows[0], vec![Value::Null]);
    }

    #[test]
    fn order_by_expression() {
        let d = db();
        // Order by -a = descending a.
        assert_eq!(
            col_a(&query(&d, "select a from t order by 0 - a")),
            vec![3, 2, 1, 1]
        );
    }

    #[test]
    fn distinct_then_order() {
        let d = db();
        assert_eq!(
            col_a(&query(&d, "select distinct a from t order by a desc")),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let d = db();
        // b is not projected but still usable as a key.
        let rs = query(&d, "select a from t where b is not null order by b");
        assert_eq!(col_a(&rs), vec![1, 1, 3]);
    }
}

#[cfg(test)]
mod group_by_tests {
    use starling_storage::{ColumnDef, Database, TableSchema, ValueType};

    use crate::ast::{Action, Statement};
    use crate::eval::env::EvalCtx;
    use crate::parser::parse_statement;

    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "emp",
                vec![
                    ColumnDef::new("dno", ValueType::Int),
                    ColumnDef::new("sal", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for (dno, sal) in [(1, 100), (1, 200), (2, 300), (2, 100), (3, 50)] {
            d.insert("emp", vec![Value::Int(dno), Value::Int(sal)])
                .unwrap();
        }
        d
    }

    fn try_query(d: &Database, src: &str) -> Result<ResultSet, SqlError> {
        let Statement::Dml(Action::Select(s)) = parse_statement(src).unwrap() else {
            panic!()
        };
        let ctx = EvalCtx {
            db: d,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        eval_select(&s, &mut env)
    }

    fn query(d: &Database, src: &str) -> ResultSet {
        try_query(d, src).unwrap()
    }

    #[test]
    fn basic_grouping() {
        let d = db();
        let rs = query(
            &d,
            "select dno, sum(sal), count(*) from emp group by dno order by dno",
        );
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::Int(300), Value::Int(2)],
                vec![Value::Int(2), Value::Int(400), Value::Int(2)],
                vec![Value::Int(3), Value::Int(50), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn having_filters_groups() {
        let d = db();
        let rs = query(
            &d,
            "select dno from emp group by dno having count(*) > 1 order by dno",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        // HAVING with aggregate comparison against group key arithmetic.
        let rs = query(
            &d,
            "select dno from emp group by dno having sum(sal) > dno * 100 order by dno",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn having_without_group_by() {
        let d = db();
        let rs = query(&d, "select count(*) from emp having count(*) > 100");
        assert!(rs.rows.is_empty());
        let rs = query(&d, "select count(*) from emp having count(*) > 1");
        assert_eq!(rs.rows, vec![vec![Value::Int(5)]]);
    }

    #[test]
    fn group_key_expression() {
        let d = db();
        // Group by a computed bucket.
        let rs = query(
            &d,
            "select sal / 100, count(*) from emp group by sal / 100 order by sal / 100",
        );
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(0), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
                vec![Value::Int(3), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn order_by_aggregate() {
        let d = db();
        let rs = query(
            &d,
            "select dno from emp group by dno order by sum(sal) desc",
        );
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(1)],
                vec![Value::Int(3)]
            ]
        );
    }

    #[test]
    fn empty_input_with_group_by_yields_no_rows() {
        let mut d = db();
        // Delete everything first.
        let Statement::Dml(del) = parse_statement("delete from emp").unwrap() else {
            panic!()
        };
        crate::eval::dml::exec_action(&del, &mut d, None).unwrap();
        let rs = query(&d, "select dno, count(*) from emp group by dno");
        assert!(rs.rows.is_empty());
        // ...but a global aggregate still yields one row.
        let rs = query(&d, "select count(*) from emp");
        assert_eq!(rs.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn non_key_column_rejected() {
        let d = db();
        let e = try_query(&d, "select sal from emp group by dno").unwrap_err();
        assert!(e.to_string().contains("GROUP BY"), "{e}");
        let e = try_query(&d, "select *, count(*) from emp").unwrap_err();
        assert!(e.to_string().contains("GROUP BY"), "{e}");
    }

    #[test]
    fn distinct_after_grouping() {
        let d = db();
        // count(*) per dno is [2,2,1]; distinct collapses the two 2s.
        let rs = query(
            &d,
            "select distinct count(*) from emp group by dno order by count(*)",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }
}
