//! A minimal, dependency-free JSON value type with a parser and a compact
//! writer — the wire format shared by the server protocol and the CLI's
//! `--json` output mode.
//!
//! The build environment is offline (no `serde_json`), so this module is
//! the single serialization point for every machine-readable report shape:
//! both the `starling-server` protocol and `starling --json` build their
//! output through [`Json`], which is what keeps the two from drifting.
//!
//! Design notes:
//!
//! * objects preserve **insertion order** (a `Vec` of pairs, not a map), so
//!   serialized output is deterministic and diffs cleanly;
//! * integers and floats are kept apart ([`Json::Int`] vs [`Json::Float`]);
//!   64-bit digests do not fit `i64`/`f64` losslessly and are serialized as
//!   fixed-width hex **strings** by convention;
//! * the parser is a strict recursive-descent over bytes with a depth limit
//!   (malicious nesting cannot overflow the stack) and full `\uXXXX` escape
//!   handling including surrogate pairs.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (insertion order preserved).
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key; first match wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as a `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        // Counts in practice are far below i64::MAX; saturate rather than
        // silently wrap if one ever is not.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// A 64-bit digest rendered in the wire convention: a fixed-width hex
/// string (JSON numbers cannot carry a `u64` losslessly).
pub fn digest_json(d: u64) -> Json {
    Json::Str(format!("{d:016x}"))
}

impl fmt::Display for Json {
    /// Compact single-line rendering (the newline-delimited protocol
    /// depends on values never containing a raw newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => {
                // Guarantee a re-parseable number (Rust prints `1` for 1.0).
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // NaN/inf have no JSON representation.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth bound: deeper input is rejected, not recursed into.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.to_string(), src, "{src}");
        }
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("a").and_then(Json::as_i64), Some(2));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":"x"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Re-serialization escapes what must be escaped.
        let s = Json::Str("line\nquote\"tab\tctrl\u{01}".into()).to_string();
        assert_eq!(s, "\"line\\nquote\\\"tab\\tctrl\\u0001\"");
        assert_eq!(
            Json::parse(&s).unwrap().as_str(),
            Some("line\nquote\"tab\tctrl\u{01}")
        );
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        for src in ["", "{", "[1,", "{\"a\"}", "1 2", "nul", "{'a':1}", "[1]]"] {
            assert!(Json::parse(src).is_err(), "{src}");
        }
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            Json::parse("9007199254740993").unwrap(),
            Json::Int(9007199254740993)
        );
        assert!(matches!(Json::parse("1e3").unwrap(), Json::Float(_)));
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
        // Floats serialize re-parseably.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn digest_convention() {
        assert_eq!(digest_json(0xdead).to_string(), "\"000000000000dead\"");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Json::from(3usize), Json::Int(3));
        assert_eq!(Json::from(Some("x")), Json::Str("x".into()));
        assert_eq!(Json::from(None::<i64>), Json::Null);
    }
}
