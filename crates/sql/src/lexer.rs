//! Hand-written lexer for the SQL subset.
//!
//! * Keywords and identifiers are case-insensitive; identifiers are
//!   lowercased at lexing time so the rest of the system is case-free.
//! * `--` starts a line comment.
//! * Strings use single quotes with `''` as the escape for `'`.

use crate::error::SqlError;
use crate::token::{Keyword, Pos, Token, TokenKind};

/// Lexes a complete input into a token stream ending in [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            pos: Pos::start(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn err(&self, pos: Pos, message: impl Into<String>) -> SqlError {
        SqlError::Lex {
            pos,
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, SqlError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('-') => {
                    // Could be a comment, minus, or negative number; peek one
                    // past by cloning the iterator (cheap for Chars).
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.peek() == Some(&'-') {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                        continue;
                    }
                }
                _ => {}
            }
            let pos = self.pos;
            let Some(c) = self.bump() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = match c {
                '(' => TokenKind::LParen,
                ')' => TokenKind::RParen,
                ',' => TokenKind::Comma,
                '.' => TokenKind::Dot,
                ';' => TokenKind::Semi,
                '*' => TokenKind::Star,
                '/' => TokenKind::Slash,
                '%' => TokenKind::Percent,
                '+' => TokenKind::Plus,
                '-' => TokenKind::Minus,
                '=' => TokenKind::Eq,
                '!' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        return Err(self.err(pos, "expected `=` after `!`"));
                    }
                }
                '<' => match self.peek() {
                    Some('=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some('>') => {
                        self.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                },
                '>' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '\'' => self.string(pos)?,
                c if c.is_ascii_digit() => self.number(pos, c)?,
                c if c.is_alphabetic() || c == '_' => self.word(c),
                c => return Err(self.err(pos, format!("unexpected character `{c}`"))),
            };
            out.push(Token { kind, pos });
        }
    }

    fn string(&mut self, start: Pos) -> Result<TokenKind, SqlError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(start, "unterminated string literal")),
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self, start: Pos, first: char) -> Result<TokenKind, SqlError> {
        let mut s = String::from(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A dot only makes a float if followed by a digit, so `1.c` (tuple
        // field access — not in this language, but defensive) stays `1` `.`.
        let mut is_float = false;
        if self.peek() == Some('.') {
            let mut ahead = self.chars.clone();
            ahead.next();
            if ahead.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                s.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let mut ahead = self.chars.clone();
            ahead.next();
            let next = ahead.peek().copied();
            let signed = matches!(next, Some('+') | Some('-'));
            let ok = if signed {
                ahead.next();
                ahead.peek().is_some_and(|c| c.is_ascii_digit())
            } else {
                next.is_some_and(|c| c.is_ascii_digit())
            };
            if ok {
                is_float = true;
                s.push(self.bump().unwrap()); // e/E
                if signed {
                    s.push(self.bump().unwrap());
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.err(start, format!("bad float literal: {e}")))
        } else {
            s.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.err(start, format!("bad integer literal: {e}")))
        }
    }

    fn word(&mut self, first: char) -> TokenKind {
        let mut s = String::new();
        s.push(first.to_ascii_lowercase());
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c.to_ascii_lowercase());
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_ident(&s) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("SELECT emp FROM Dept"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("emp".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("dept".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2E-2 7"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1e3),
                TokenKind::Float(2e-2),
                TokenKind::Int(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< <= > >= = <> != + - * / %"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' 'x'"),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 -- comment here\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Minus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character() {
        assert!(matches!(lex("a @ b"), Err(SqlError::Lex { .. })));
        assert!(matches!(lex("a ! b"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(
            kinds("new_updated old_updated"),
            vec![
                TokenKind::Ident("new_updated".into()),
                TokenKind::Ident("old_updated".into()),
                TokenKind::Eof
            ]
        );
    }
}
