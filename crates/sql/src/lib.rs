//! # starling-sql
//!
//! The SQL subset and rule definition language of the Starling production
//! rule system — a faithful reconstruction of the set-oriented, SQL-based
//! Starburst rule language of \[WCL91\]/\[WF90\] as described in Section 2 of
//! the paper.
//!
//! The crate provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] for scripts containing
//!   `CREATE TABLE` DDL, DML statements, and `CREATE RULE` definitions:
//!
//!   ```sql
//!   create rule bonus on emp
//!   when inserted, updated(salary)
//!   if exists (select * from new_updated where salary > 100)
//!   then update emp set bonus = 10 where salary > 100
//!   precedes audit_rule
//!   end
//!   ```
//!
//! * semantic [`validate`]-ion against a catalog (unknown tables/columns,
//!   transition tables used without the matching triggering operation,
//!   aggregate placement, type errors);
//! * syntactic extraction ([`refs`]) of the paper's Section 3 definitions:
//!   `Triggered-By`, `Performs`, `Reads`, and `Observable`;
//! * an [`eval`]-uator with SQL three-valued logic, subqueries (including
//!   correlated), aggregates, and transition-table references, executing
//!   against a [`starling_storage::Database`] and reporting tuple-level
//!   effects for the engine's operation log.
//!
//! Transition tables are spelled `inserted`, `deleted`, `new_updated`, and
//! `old_updated` (the paper's `new-updated`/`old-updated`, with `_` since `-`
//! is the minus operator in SQL).
//!
//! ```
//! use starling_sql::{parse_statement, RuleSignature};
//! use starling_sql::ast::Statement;
//! use starling_storage::{Catalog, ColumnDef, Op, TableSchema, ValueType};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_table(TableSchema::new(
//!     "emp",
//!     vec![ColumnDef::new("salary", ValueType::Int)],
//! ).unwrap()).unwrap();
//!
//! let Statement::CreateRule(rule) = parse_statement(
//!     "create rule cap on emp when updated(salary) \
//!      then update emp set salary = 500 where salary > 500 end",
//! )? else { unreachable!() };
//!
//! let sig = RuleSignature::of_rule(&rule, &catalog)?;
//! assert!(sig.triggered_by.contains(&Op::update("emp", "salary")));
//! assert!(sig.performs.contains(&Op::update("emp", "salary")));
//! assert!(!sig.observable);
//! # Ok::<(), starling_sql::SqlError>(())
//! ```

pub mod ast;
pub mod display;
pub mod error;
pub mod eval;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod refs;
pub mod token;
pub mod validate;

pub use ast::{
    Action, ColumnRef, CreateTable, Expr, FromItem, InsertSource, RuleDef, SelectItem, SelectStmt,
    Statement, TransitionTable, TriggerEvent,
};
pub use error::SqlError;
pub use json::{digest_json, Json, JsonError};
pub use parser::{parse_expr, parse_script, parse_statement};
pub use refs::RuleSignature;

/// Convenient result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;
