//! Recursive-descent parser for scripts, statements, and expressions.

use starling_storage::{ColumnDef, TableSchema, Value, ValueType};

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::lex;
use crate::token::{Keyword, Pos, Token, TokenKind};

/// Parses a whole script: a sequence of statements separated/terminated by
/// `;`.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, SqlError> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

/// Parses exactly one statement (trailing `;` optional).
pub fn parse_statement(input: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(input)?;
    let s = p.statement()?;
    p.eat(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(s)
}

/// Parses a standalone expression (useful for tests and the CLI).
pub fn parse_expr(input: &str) -> Result<Expr, SqlError> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, SqlError> {
        Ok(Parser {
            tokens: lex(input)?,
            idx: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.idx + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.idx].kind.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        self.expect(&TokenKind::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek())))
        }
    }

    /// An identifier. Transition-table keywords (`inserted`, `deleted`) are
    /// *not* identifiers; names like `new_updated` lex as plain identifiers.
    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    /// A name usable as a table in FROM: identifier or transition-table
    /// keyword.
    fn table_name(&mut self) -> Result<TableRef, SqlError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let r = match TransitionTable::from_name(s) {
                    Some(t) => TableRef::Transition(t),
                    None => TableRef::Base(s.clone()),
                };
                self.bump();
                Ok(r)
            }
            TokenKind::Keyword(Keyword::Inserted) => {
                self.bump();
                Ok(TableRef::Transition(TransitionTable::Inserted))
            }
            TokenKind::Keyword(Keyword::Deleted) => {
                self.bump();
                Ok(TableRef::Transition(TransitionTable::Deleted))
            }
            other => Err(self.err(format!("expected table name, found {other}"))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, SqlError> {
        let mut out = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Declare) => self.directive(),
            TokenKind::Keyword(Keyword::Drop) => {
                self.bump();
                self.expect_kw(Keyword::Rule)?;
                Ok(Statement::DropRule(self.ident()?))
            }
            TokenKind::Keyword(Keyword::Alter) => {
                self.bump();
                self.expect_kw(Keyword::Rule)?;
                let name = self.ident()?;
                let mut precedes = Vec::new();
                let mut follows = Vec::new();
                loop {
                    if self.eat_kw(Keyword::Precedes) {
                        precedes.extend(self.ident_list()?);
                    } else if self.eat_kw(Keyword::Follows) {
                        follows.extend(self.ident_list()?);
                    } else {
                        break;
                    }
                }
                if precedes.is_empty() && follows.is_empty() {
                    return Err(self.err("alter rule needs a `precedes` or `follows` clause"));
                }
                Ok(Statement::AlterRule {
                    name,
                    precedes,
                    follows,
                })
            }
            _ => Ok(Statement::Dml(self.action()?)),
        }
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            self.create_table()
        } else if self.eat_kw(Keyword::Rule) {
            self.create_rule()
        } else {
            Err(self.err(format!(
                "expected `table` or `rule` after `create`, found {}",
                self.peek()
            )))
        }
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut cols = Vec::new();
        loop {
            let cname = self.ident()?;
            let ty = self.value_type()?;
            let mut nullable = false;
            if self.eat_kw(Keyword::Not) {
                self.expect_kw(Keyword::Null)?;
            } else if self.eat_kw(Keyword::Null) {
                nullable = true;
            }
            cols.push(ColumnDef {
                name: cname,
                ty,
                nullable,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let schema = TableSchema::new(name, cols).map_err(SqlError::Storage)?;
        Ok(Statement::CreateTable(CreateTable { schema }))
    }

    fn value_type(&mut self) -> Result<ValueType, SqlError> {
        let t = match self.peek() {
            TokenKind::Keyword(Keyword::Int) | TokenKind::Keyword(Keyword::Integer) => {
                ValueType::Int
            }
            TokenKind::Keyword(Keyword::Float) | TokenKind::Keyword(Keyword::Real) => {
                ValueType::Float
            }
            TokenKind::Keyword(Keyword::Varchar)
            | TokenKind::Keyword(Keyword::Text)
            | TokenKind::Keyword(Keyword::String_) => ValueType::Str,
            TokenKind::Keyword(Keyword::Bool) | TokenKind::Keyword(Keyword::Boolean) => {
                ValueType::Bool
            }
            other => return Err(self.err(format!("expected column type, found {other}"))),
        };
        self.bump();
        // Optional `(n)` length, accepted and ignored (VARCHAR(20)).
        if self.eat(&TokenKind::LParen) {
            match self.bump() {
                TokenKind::Int(_) => {}
                other => return Err(self.err(format!("expected type length, found {other}"))),
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(t)
    }

    fn create_rule(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_kw(Keyword::On)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::When)?;
        let mut events = vec![self.trigger_event()?];
        while self.eat(&TokenKind::Comma) {
            events.push(self.trigger_event()?);
        }
        let condition = if self.eat_kw(Keyword::If) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw(Keyword::Then)?;
        let mut actions = vec![self.action()?];
        while self.eat(&TokenKind::Semi) {
            if self.at_kw(Keyword::End)
                || self.at_kw(Keyword::Precedes)
                || self.at_kw(Keyword::Follows)
            {
                break;
            }
            actions.push(self.action()?);
        }
        let mut precedes = Vec::new();
        let mut follows = Vec::new();
        loop {
            if self.eat_kw(Keyword::Precedes) {
                precedes.extend(self.ident_list()?);
            } else if self.eat_kw(Keyword::Follows) {
                follows.extend(self.ident_list()?);
            } else {
                break;
            }
        }
        self.expect_kw(Keyword::End)?;
        Ok(Statement::CreateRule(RuleDef {
            name,
            table,
            events,
            condition,
            actions,
            precedes,
            follows,
        }))
    }

    fn trigger_event(&mut self) -> Result<TriggerEvent, SqlError> {
        if self.eat_kw(Keyword::Inserted) {
            Ok(TriggerEvent::Inserted)
        } else if self.eat_kw(Keyword::Deleted) {
            Ok(TriggerEvent::Deleted)
        } else if self.eat_kw(Keyword::Updated) {
            if self.eat(&TokenKind::LParen) {
                let cols = self.ident_list()?;
                self.expect(&TokenKind::RParen)?;
                Ok(TriggerEvent::Updated(Some(cols)))
            } else {
                Ok(TriggerEvent::Updated(None))
            }
        } else {
            Err(self.err(format!(
                "expected `inserted`, `deleted`, or `updated`, found {}",
                self.peek()
            )))
        }
    }

    fn directive(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Declare)?;
        if self.eat_kw(Keyword::Commute) {
            let a = self.ident()?;
            self.expect(&TokenKind::Comma)?;
            let b = self.ident()?;
            Ok(Statement::Directive(Directive::Commute(a, b)))
        } else if self.eat_kw(Keyword::Terminates) {
            let rule = self.ident()?;
            let justification = match self.peek() {
                TokenKind::Str(s) => {
                    let s = s.clone();
                    self.bump();
                    s
                }
                other => {
                    return Err(self.err(format!("expected justification string, found {other}")))
                }
            };
            Ok(Statement::Directive(Directive::Terminates {
                rule,
                justification,
            }))
        } else {
            Err(self.err(format!(
                "expected `commute` or `terminates` after `declare`, found {}",
                self.peek()
            )))
        }
    }

    // ------------------------------------------------------------------
    // Actions / DML
    // ------------------------------------------------------------------

    fn action(&mut self) -> Result<Action, SqlError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Insert) => self.insert().map(Action::Insert),
            TokenKind::Keyword(Keyword::Delete) => self.delete().map(Action::Delete),
            TokenKind::Keyword(Keyword::Update) => self.update().map(Action::Update),
            TokenKind::Keyword(Keyword::Select) => self.select().map(Action::Select),
            TokenKind::Keyword(Keyword::Rollback) => {
                self.bump();
                Ok(Action::Rollback)
            }
            other => Err(self.err(format!(
                "expected `insert`, `delete`, `update`, `select`, or `rollback`, found {other}"
            ))),
        }
    }

    fn insert(&mut self) -> Result<InsertStmt, SqlError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        // Optional explicit column list — requires lookahead to distinguish
        // `insert into t (a, b) values ...` from `insert into t values ...`
        // only via the keyword after: column list always followed by VALUES
        // or SELECT keyword.
        let mut columns = None;
        if matches!(self.peek(), TokenKind::LParen) && matches!(self.peek2(), TokenKind::Ident(_)) {
            self.bump(); // (
            let cols = self.ident_list()?;
            self.expect(&TokenKind::RParen)?;
            columns = Some(cols);
        }
        let source = if self.eat_kw(Keyword::Values) {
            let mut rows = vec![self.value_tuple()?];
            while self.eat(&TokenKind::Comma) {
                rows.push(self.value_tuple()?);
            }
            InsertSource::Values(rows)
        } else if self.at_kw(Keyword::Select) {
            InsertSource::Select(self.select()?)
        } else {
            return Err(self.err(format!(
                "expected `values` or `select`, found {}",
                self.peek()
            )));
        };
        Ok(InsertStmt {
            table,
            columns,
            source,
        })
    }

    fn value_tuple(&mut self) -> Result<Vec<Expr>, SqlError> {
        self.expect(&TokenKind::LParen)?;
        let mut out = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn delete(&mut self) -> Result<DeleteStmt, SqlError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt, SqlError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            sets,
            where_clause,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from.push(self.parse_from_item()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_from_item()?);
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, SqlError> {
        let table = self.table_name()?;
        // An alias follows either an explicit `as` or as a bare identifier
        // that cannot be a transition-table name.
        let alias = if self.eat_kw(Keyword::As)
            || matches!(self.peek(), TokenKind::Ident(s) if TransitionTable::from_name(s).is_none())
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(FromItem { table, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// `expr := or_expr`
    pub(crate) fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        if self.at_kw(Keyword::Exists) {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let s = self.select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Exists(Box::new(s)));
        }
        let lhs = self.additive()?;
        // Postfix predicate forms.
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = if self.at_kw(Keyword::Not)
            && matches!(
                self.peek2(),
                TokenKind::Keyword(Keyword::In)
                    | TokenKind::Keyword(Keyword::Between)
                    | TokenKind::Keyword(Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            if self.at_kw(Keyword::Select) {
                let s = self.select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSelect {
                    expr: Box::new(lhs),
                    select: Box::new(s),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected `in`, `between`, or `like` after `not`"));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at_kw(Keyword::Select) {
                    let s = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(s)))
                } else {
                    let e = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(e)
                }
            }
            TokenKind::Keyword(Keyword::Count) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let agg = if self.eat(&TokenKind::Star) {
                    Expr::Aggregate {
                        func: Aggregate::CountStar,
                        arg: None,
                    }
                } else {
                    let e = self.expr()?;
                    Expr::Aggregate {
                        func: Aggregate::Count,
                        arg: Some(Box::new(e)),
                    }
                };
                self.expect(&TokenKind::RParen)?;
                Ok(agg)
            }
            TokenKind::Keyword(k @ (Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max)) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let func = match k {
                    Keyword::Sum => Aggregate::Sum,
                    Keyword::Avg => Aggregate::Avg,
                    Keyword::Min => Aggregate::Min,
                    _ => Aggregate::Max,
                };
                Ok(Expr::Aggregate {
                    func,
                    arg: Some(Box::new(e)),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(name, col)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(name)))
                }
            }
            // Transition-table keywords can qualify columns: `inserted.x`.
            TokenKind::Keyword(k @ (Keyword::Inserted | Keyword::Deleted)) => {
                self.bump();
                let qual = match k {
                    Keyword::Inserted => "inserted",
                    _ => "deleted",
                };
                self.expect(&TokenKind::Dot)?;
                let col = self.ident()?;
                Ok(Expr::Column(ColumnRef::qualified(qual, col)))
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(input: &str) -> RuleDef {
        match parse_statement(input).unwrap() {
            Statement::CreateRule(r) => r,
            s => panic!("expected rule, got {s:?}"),
        }
    }

    #[test]
    fn create_table_with_types() {
        let s = parse_statement(
            "create table emp (id integer, name varchar(20) not null, sal float null, ok boolean)",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert_eq!(ct.schema.name, "emp");
        assert_eq!(ct.schema.arity(), 4);
        assert!(!ct.schema.columns[1].nullable);
        assert!(ct.schema.columns[2].nullable);
        assert_eq!(ct.schema.columns[3].ty, ValueType::Bool);
    }

    #[test]
    fn minimal_rule() {
        let r = rule("create rule r1 on emp when inserted then delete from emp end");
        assert_eq!(r.name, "r1");
        assert_eq!(r.table, "emp");
        assert_eq!(r.events, vec![TriggerEvent::Inserted]);
        assert!(r.condition.is_none());
        assert_eq!(r.actions.len(), 1);
        assert!(r.precedes.is_empty());
    }

    #[test]
    fn full_rule() {
        let r = rule(
            "create rule raise on emp \
             when updated(salary), inserted \
             if exists (select * from new_updated where salary > 100) \
             then update emp set bonus = bonus + 1 where salary > 100; \
                  insert into log values (1, 'raised') \
             precedes audit, cleanup \
             follows init \
             end",
        );
        assert_eq!(
            r.events,
            vec![
                TriggerEvent::Updated(Some(vec!["salary".into()])),
                TriggerEvent::Inserted
            ]
        );
        assert!(r.condition.is_some());
        assert_eq!(r.actions.len(), 2);
        assert_eq!(r.precedes, vec!["audit".to_owned(), "cleanup".to_owned()]);
        assert_eq!(r.follows, vec!["init".to_owned()]);
    }

    #[test]
    fn rule_with_trailing_semi_before_end() {
        let r = rule("create rule r on t when deleted then rollback; end");
        assert_eq!(r.actions, vec![Action::Rollback]);
    }

    #[test]
    fn updated_any_column() {
        let r = rule("create rule r on t when updated then rollback end");
        assert_eq!(r.events, vec![TriggerEvent::Updated(None)]);
    }

    #[test]
    fn insert_forms() {
        let Statement::Dml(Action::Insert(i)) =
            parse_statement("insert into t (a, b) values (1, 'x'), (2, 'y')").unwrap()
        else {
            panic!()
        };
        assert_eq!(i.columns.as_deref().unwrap().len(), 2);
        let InsertSource::Values(rows) = &i.source else {
            panic!()
        };
        assert_eq!(rows.len(), 2);

        let Statement::Dml(Action::Insert(i)) =
            parse_statement("insert into t select * from u where x > 0").unwrap()
        else {
            panic!()
        };
        assert!(i.columns.is_none());
        assert!(matches!(i.source, InsertSource::Select(_)));
    }

    #[test]
    fn select_with_aliases_and_join() {
        let Statement::Dml(Action::Select(s)) = parse_statement(
            "select distinct e.name, d.budget as b from emp as e, dept d where e.dno = d.dno",
        )
        .unwrap() else {
            panic!()
        };
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding(), "e");
        assert_eq!(s.from[1].binding(), "d");
    }

    #[test]
    fn transition_tables_in_from() {
        let Statement::Dml(Action::Select(s)) =
            parse_statement("select * from inserted, new_updated").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            s.from[0].table,
            TableRef::Transition(TransitionTable::Inserted)
        );
        assert_eq!(
            s.from[1].table,
            TableRef::Transition(TransitionTable::NewUpdated)
        );
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7 and not 4 > 5 or x is null").unwrap();
        // (((1 + (2*3)) = 7) AND (NOT (4 > 5))) OR (x IS NULL)
        let Expr::Binary { op: BinOp::Or, .. } = e else {
            panic!("top should be OR: {e:?}")
        };
    }

    #[test]
    fn between_like_in() {
        assert!(matches!(
            parse_expr("x between 1 and 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x not between 1 and 10").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("name like 'a%'").unwrap(),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x in (1, 2, 3)").unwrap(),
            Expr::InList { .. }
        ));
        assert!(matches!(
            parse_expr("x not in (select y from t)").unwrap(),
            Expr::InSelect { negated: true, .. }
        ));
    }

    #[test]
    fn scalar_subquery_vs_paren_expr() {
        assert!(matches!(
            parse_expr("(select count(*) from t) > 5").unwrap(),
            Expr::Binary { .. }
        ));
        // ORDER BY parses with directions and multiple keys.
        let Statement::Dml(Action::Select(s)) =
            parse_statement("select a from t where a > 0 order by a desc, b, c asc").unwrap()
        else {
            panic!()
        };
        assert_eq!(s.order_by.len(), 3);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert!(!s.order_by[2].desc);
        assert!(matches!(
            parse_expr("(1 + 2)").unwrap(),
            Expr::Binary { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn aggregates() {
        assert!(matches!(
            parse_expr("count(*)").unwrap(),
            Expr::Aggregate {
                func: Aggregate::CountStar,
                arg: None
            }
        ));
        assert!(matches!(
            parse_expr("sum(salary)").unwrap(),
            Expr::Aggregate {
                func: Aggregate::Sum,
                ..
            }
        ));
    }

    #[test]
    fn directives() {
        assert_eq!(
            parse_statement("declare commute r1, r2").unwrap(),
            Statement::Directive(Directive::Commute("r1".into(), "r2".into()))
        );
        assert_eq!(
            parse_statement("declare terminates cleanup 'deletes only'").unwrap(),
            Statement::Directive(Directive::Terminates {
                rule: "cleanup".into(),
                justification: "deletes only".into()
            })
        );
    }

    #[test]
    fn script_with_multiple_statements() {
        let stmts = parse_script(
            "create table t (a int);\n\
             insert into t values (1);;\n\
             create rule r on t when inserted then delete from t end;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_errors_have_position() {
        let err = parse_statement("select from").unwrap_err();
        let SqlError::Parse { message, .. } = err else {
            panic!()
        };
        assert!(message.contains("expected expression"), "{message}");
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(parse_statement("rollback rollback").is_err());
    }

    #[test]
    fn negative_numbers_and_neg() {
        assert!(matches!(parse_expr("-5").unwrap(), Expr::Neg(_)));
        assert!(matches!(
            parse_expr("a - -5").unwrap(),
            Expr::Binary { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn transition_column_qualifiers() {
        assert_eq!(
            parse_expr("inserted.salary").unwrap(),
            Expr::Column(ColumnRef::qualified("inserted", "salary"))
        );
        assert_eq!(
            parse_expr("old_updated.salary").unwrap(),
            Expr::Column(ColumnRef::qualified("old_updated", "salary"))
        );
    }

    #[test]
    fn update_multiple_sets() {
        let Statement::Dml(Action::Update(u)) =
            parse_statement("update t set a = 1, b = b + 1 where c < 3").unwrap()
        else {
            panic!()
        };
        assert_eq!(u.sets.len(), 2);
        assert!(u.where_clause.is_some());
    }
}
