//! Lowering validated ASTs into physical plans.
//!
//! Compilation is total: any construct outside the compilable subset makes
//! the enclosing unit (select, condition, or whole action) fall back to an
//! `Interp` node carrying the original AST, so plan execution is *always*
//! semantically the interpreter — just faster on the common paths.

use std::collections::BTreeSet;

use starling_storage::{Catalog, Database, Value, ValueType};

use crate::ast::{Action, BinOp, Expr, InsertSource, RuleDef, SelectItem, SelectStmt, TableRef};
use crate::eval::env::{Env, EvalCtx};
use crate::eval::expr::eval_expr;
use crate::eval::select::contains_aggregate;

use super::{
    ActionPlan, CompiledSelect, CondPlan, DeletePlan, InsertPlan, InsertSourcePlan, JoinKey, PExpr,
    RulePlan, SelectPlan, Slot, SourceMeta, SourcePlan, UpdatePlan,
};

/// Compiles a whole rule: condition plus every action. Never fails — units
/// outside the compilable subset become `Interp` fallbacks.
pub fn compile_rule(def: &RuleDef, catalog: &Catalog) -> RulePlan {
    RulePlan {
        condition: def
            .condition
            .as_ref()
            .map(|e| compile_condition(e, catalog, Some(&def.table))),
        actions: def
            .actions
            .iter()
            .map(|a| compile_action(a, catalog, Some(&def.table)))
            .collect(),
    }
}

/// Compiles a boolean condition expression (evaluated with no row scope).
pub fn compile_condition(e: &Expr, catalog: &Catalog, rule_table: Option<&str>) -> CondPlan {
    let mut c = Compiler::new(catalog, rule_table);
    match c.compile_expr(e) {
        Ok((pred, _)) => CondPlan::Compiled {
            pred,
            cache_slots: c.caches,
        },
        Err(Bail) => CondPlan::Interp(e.clone()),
    }
}

/// Compiles one action statement.
pub fn compile_action(a: &Action, catalog: &Catalog, rule_table: Option<&str>) -> ActionPlan {
    let mut c = Compiler::new(catalog, rule_table);
    match c.compile_action_inner(a) {
        Ok(plan) => plan,
        Err(Bail) => ActionPlan::Interp(a.clone()),
    }
}

/// Compiles a standalone select; returns the plan and its cache-slot count.
pub fn compile_select(
    s: &SelectStmt,
    catalog: &Catalog,
    rule_table: Option<&str>,
) -> (SelectPlan, usize) {
    let mut c = Compiler::new(catalog, rule_table);
    let (plan, _, _) = c.compile_subquery(s);
    (plan, c.caches)
}

/// Marker for "outside the compilable subset": the enclosing unit falls
/// back to the interpreter.
struct Bail;

type CResult<T> = Result<T, Bail>;

/// Static type of a compiled expression: `X` means "a value of variant `X`
/// or NULL at runtime"; `Null` means always NULL; `Any` means unknown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum STy {
    Int,
    Float,
    Str,
    Bool,
    Null,
    Any,
}

impl STy {
    fn of_value(v: &Value) -> STy {
        match v {
            Value::Null => STy::Null,
            Value::Bool(_) => STy::Bool,
            Value::Int(_) => STy::Int,
            Value::Float(_) => STy::Float,
            Value::Str(_) => STy::Str,
        }
    }

    fn of_decl(ty: ValueType) -> STy {
        match ty {
            ValueType::Bool => STy::Bool,
            ValueType::Int => STy::Int,
            // A Float column accepts Int values too, so its static type is
            // only "numeric" — which `Any` approximates conservatively for
            // join-key purposes; comparisons still see it as numeric below.
            ValueType::Float => STy::Float,
            ValueType::Str => STy::Str,
        }
    }

    fn is_numeric(self) -> bool {
        matches!(self, STy::Int | STy::Float)
    }

    /// Whether `sql_cmp` between these static types can never fail.
    fn comparable(self, other: STy) -> bool {
        if self == STy::Null || other == STy::Null {
            return true;
        }
        if self == STy::Any || other == STy::Any {
            return false;
        }
        self == other || (self.is_numeric() && other.is_numeric())
    }

    /// Whether a value of this type always passes `eval_bool`.
    fn boolish(self) -> bool {
        matches!(self, STy::Bool | STy::Null)
    }
}

/// Static facts about a compiled expression.
struct Info {
    /// Resolved column references as (absolute scope index, source index).
    refs: BTreeSet<(usize, usize)>,
    /// Whether the expression may reference anything (an `Interp` subplan
    /// whose references are unknown).
    refs_all: bool,
    /// Static result type.
    ty: STy,
    /// Whether evaluation can never raise an error.
    infallible: bool,
}

impl Info {
    fn constant(ty: STy) -> Info {
        Info {
            refs: BTreeSet::new(),
            refs_all: false,
            ty,
            infallible: true,
        }
    }

    /// Absorbs a subexpression's references and fallibility (type is set by
    /// the caller).
    fn absorb(&mut self, other: &Info) {
        self.refs.extend(other.refs.iter().copied());
        self.refs_all |= other.refs_all;
        self.infallible &= other.infallible;
    }
}

struct Compiler<'c> {
    catalog: &'c Catalog,
    rule_table: Option<&'c str>,
    /// Scope stack mirroring the evaluator's frame stack, outermost first.
    scopes: Vec<Vec<SourceMeta>>,
    /// Subquery cache slots allocated so far in the current unit.
    caches: usize,
    /// Empty database for constant folding via the interpreter.
    scratch: Database,
}

impl<'c> Compiler<'c> {
    fn new(catalog: &'c Catalog, rule_table: Option<&'c str>) -> Self {
        Compiler {
            catalog,
            rule_table,
            scopes: Vec::new(),
            caches: 0,
            scratch: Database::new(),
        }
    }

    /// Resolves a column reference exactly as `Env::lookup` would,
    /// innermost scope first. Returns the slot, its static type, and the
    /// absolute scope index it resolved in.
    fn resolve(&self, qualifier: Option<&str>, column: &str) -> CResult<(Slot, STy, usize)> {
        for (abs, scope) in self.scopes.iter().enumerate().rev() {
            let depth = self.scopes.len() - 1 - abs;
            match qualifier {
                Some(q) => {
                    if let Some((si, m)) = scope.iter().enumerate().find(|(_, m)| m.name == q) {
                        // `Env::lookup` stops at a name match even when the
                        // column is absent (runtime error) — mirror by
                        // bailing to the interpreter.
                        let schema = self.catalog.table(&m.table).map_err(|_| Bail)?;
                        let col = schema.column_index(column).ok_or(Bail)?;
                        let ty = STy::of_decl(schema.columns[col].ty);
                        return Ok((
                            Slot {
                                depth,
                                source: si,
                                col,
                            },
                            ty,
                            abs,
                        ));
                    }
                }
                None => {
                    let mut found = None;
                    for (si, m) in scope.iter().enumerate() {
                        let Ok(schema) = self.catalog.table(&m.table) else {
                            continue;
                        };
                        if let Some(col) = schema.column_index(column) {
                            if found.is_some() {
                                return Err(Bail); // ambiguous
                            }
                            found = Some((si, col, STy::of_decl(schema.columns[col].ty)));
                        }
                    }
                    if let Some((si, col, ty)) = found {
                        return Ok((
                            Slot {
                                depth,
                                source: si,
                                col,
                            },
                            ty,
                            abs,
                        ));
                    }
                }
            }
        }
        Err(Bail)
    }

    /// Tries to fold a node whose operands are all constants by evaluating
    /// the equivalent literal AST with the interpreter. Nodes that error at
    /// compile time are kept unfolded so the error still surfaces (in the
    /// same place) at runtime.
    fn fold(&self, synth: Expr, unfolded: PExpr) -> (PExpr, Option<Value>) {
        let ctx = EvalCtx {
            db: &self.scratch,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        match eval_expr(&synth, &mut env) {
            Ok(v) => (PExpr::Const(v.clone()), Some(v)),
            Err(_) => (unfolded, None),
        }
    }

    fn compile_expr(&mut self, e: &Expr) -> CResult<(PExpr, Info)> {
        match e {
            Expr::Literal(v) => Ok((PExpr::Const(v.clone()), Info::constant(STy::of_value(v)))),
            Expr::Column(c) => {
                let (slot, ty, abs) = self.resolve(c.qualifier.as_deref(), &c.column)?;
                let mut info = Info::constant(ty);
                info.refs.insert((abs, slot.source));
                Ok((PExpr::Slot(slot), info))
            }
            Expr::Binary { op, lhs, rhs } => self.compile_binary(*op, lhs, rhs),
            Expr::Neg(x) => {
                let (px, xi) = self.compile_expr(x)?;
                let ty = match xi.ty {
                    STy::Int => STy::Int,
                    STy::Float => STy::Float,
                    STy::Null => STy::Null,
                    _ => STy::Any,
                };
                let mut info = Info::constant(ty);
                info.absorb(&xi);
                // Int negation can overflow; Float and Null cannot fail.
                info.infallible &= matches!(xi.ty, STy::Float | STy::Null);
                if let PExpr::Const(v) = &px {
                    let synth = Expr::Neg(Box::new(Expr::Literal(v.clone())));
                    let (folded, fv) = self.fold(synth, PExpr::Neg(Box::new(px.clone())));
                    if let Some(v) = fv {
                        return Ok((folded, Info::constant(STy::of_value(&v))));
                    }
                    return Ok((folded, info));
                }
                Ok((PExpr::Neg(Box::new(px)), info))
            }
            Expr::Not(x) => {
                let (px, xi) = self.compile_expr(x)?;
                let mut info = Info::constant(STy::Bool);
                info.absorb(&xi);
                info.infallible &= xi.ty.boolish();
                if let PExpr::Const(v) = &px {
                    let synth = Expr::Not(Box::new(Expr::Literal(v.clone())));
                    let (folded, fv) = self.fold(synth, PExpr::Not(Box::new(px.clone())));
                    if let Some(v) = fv {
                        return Ok((folded, Info::constant(STy::of_value(&v))));
                    }
                    return Ok((folded, info));
                }
                Ok((PExpr::Not(Box::new(px)), info))
            }
            Expr::IsNull { expr, negated } => {
                let (px, xi) = self.compile_expr(expr)?;
                let mut info = Info::constant(STy::Bool);
                info.absorb(&xi);
                if let PExpr::Const(v) = &px {
                    return Ok((
                        PExpr::Const(Value::Bool(v.is_null() != *negated)),
                        Info::constant(STy::Bool),
                    ));
                }
                Ok((
                    PExpr::IsNull {
                        expr: Box::new(px),
                        negated: *negated,
                    },
                    info,
                ))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let (pe, ei) = self.compile_expr(expr)?;
                let mut info = Info::constant(STy::Bool);
                info.absorb(&ei);
                let mut plist = Vec::with_capacity(list.len());
                for item in list {
                    let (pi, ii) = self.compile_expr(item)?;
                    info.infallible &= ei.ty.comparable(ii.ty);
                    info.absorb(&ii);
                    plist.push(pi);
                }
                Ok((
                    PExpr::InList {
                        expr: Box::new(pe),
                        list: plist,
                        negated: *negated,
                    },
                    info,
                ))
            }
            Expr::InSelect {
                expr,
                select,
                negated,
            } => {
                let (pe, ei) = self.compile_expr(expr)?;
                let (plan, tys, si) = self.compile_subquery(select);
                let cache = self.alloc_cache(&si);
                let mut info = Info::constant(STy::Bool);
                info.absorb(&ei);
                info.absorb(&si);
                info.infallible &=
                    tys.len() == 1 && ei.ty.comparable(tys[0]) && compiled_infallible(&plan);
                Ok((
                    PExpr::InSelect {
                        expr: Box::new(pe),
                        select: Box::new(plan),
                        negated: *negated,
                        cache,
                    },
                    info,
                ))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let (pe, ei) = self.compile_expr(expr)?;
                let (pl, li) = self.compile_expr(low)?;
                let (ph, hi) = self.compile_expr(high)?;
                let mut info = Info::constant(STy::Bool);
                info.absorb(&ei);
                info.absorb(&li);
                info.absorb(&hi);
                info.infallible &= ei.ty.comparable(li.ty) && ei.ty.comparable(hi.ty);
                Ok((
                    PExpr::Between {
                        expr: Box::new(pe),
                        low: Box::new(pl),
                        high: Box::new(ph),
                        negated: *negated,
                    },
                    info,
                ))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let (pe, ei) = self.compile_expr(expr)?;
                let (pp, pi) = self.compile_expr(pattern)?;
                let mut info = Info::constant(STy::Bool);
                info.absorb(&ei);
                info.absorb(&pi);
                info.infallible &=
                    matches!(ei.ty, STy::Str | STy::Null) && matches!(pi.ty, STy::Str | STy::Null);
                Ok((
                    PExpr::Like {
                        expr: Box::new(pe),
                        pattern: Box::new(pp),
                        negated: *negated,
                    },
                    info,
                ))
            }
            Expr::Exists(select) => {
                let (plan, _, si) = self.compile_subquery(select);
                let cache = self.alloc_cache(&si);
                let mut info = Info::constant(STy::Bool);
                info.absorb(&si);
                info.infallible &= compiled_infallible(&plan);
                Ok((
                    PExpr::Exists {
                        select: Box::new(plan),
                        cache,
                    },
                    info,
                ))
            }
            Expr::ScalarSubquery(select) => {
                let (plan, tys, si) = self.compile_subquery(select);
                let cache = self.alloc_cache(&si);
                let mut info = Info::constant(tys.first().copied().unwrap_or(STy::Any));
                info.absorb(&si);
                // More than one result row is a runtime error, so a scalar
                // subquery is never statically infallible.
                info.infallible = false;
                Ok((
                    PExpr::Scalar {
                        select: Box::new(plan),
                        cache,
                    },
                    info,
                ))
            }
            Expr::Aggregate { .. } => Err(Bail),
        }
    }

    fn compile_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> CResult<(PExpr, Info)> {
        let (pl, li) = self.compile_expr(lhs)?;
        // Short-circuit folds that are exact under 3VL evaluation order:
        // a FALSE (resp. TRUE) left operand returns before the right
        // operand is ever evaluated, so the right side can be dropped.
        if op == BinOp::And {
            if let PExpr::Const(Value::Bool(false)) = pl {
                return Ok((PExpr::Const(Value::Bool(false)), Info::constant(STy::Bool)));
            }
        }
        if op == BinOp::Or {
            if let PExpr::Const(Value::Bool(true)) = pl {
                return Ok((PExpr::Const(Value::Bool(true)), Info::constant(STy::Bool)));
            }
        }
        let (pr, ri) = self.compile_expr(rhs)?;

        let ty = if matches!(op, BinOp::And | BinOp::Or) || op.is_comparison() {
            STy::Bool
        } else {
            arith_ty(li.ty, ri.ty)
        };
        let mut info = Info::constant(ty);
        info.absorb(&li);
        info.absorb(&ri);
        info.infallible &= if matches!(op, BinOp::And | BinOp::Or) {
            li.ty.boolish() && ri.ty.boolish()
        } else if op.is_comparison() {
            li.ty.comparable(ri.ty)
        } else {
            // Arithmetic can overflow or divide by zero.
            false
        };

        if let (PExpr::Const(a), PExpr::Const(b)) = (&pl, &pr) {
            let synth = Expr::bin(op, Expr::Literal(a.clone()), Expr::Literal(b.clone()));
            let unfolded = PExpr::Binary {
                op,
                lhs: Box::new(pl.clone()),
                rhs: Box::new(pr.clone()),
            };
            let (folded, fv) = self.fold(synth, unfolded);
            if let Some(v) = fv {
                return Ok((folded, Info::constant(STy::of_value(&v))));
            }
            return Ok((folded, info));
        }
        Ok((
            PExpr::Binary {
                op,
                lhs: Box::new(pl),
                rhs: Box::new(pr),
            },
            info,
        ))
    }

    /// Allocates a cache slot for a subquery that cannot observe any
    /// enclosing row scope (its result is fixed for a whole statement
    /// execution).
    fn alloc_cache(&mut self, si: &Info) -> Option<usize> {
        if si.refs.is_empty() && !si.refs_all {
            let slot = self.caches;
            self.caches += 1;
            Some(slot)
        } else {
            None
        }
    }

    /// Compiles a subquery, falling back to `Interp` on `Bail`. Returns the
    /// plan, the static types of its output columns (empty for `Interp`),
    /// and an `Info` describing references to *enclosing* scopes.
    fn compile_subquery(&mut self, s: &SelectStmt) -> (SelectPlan, Vec<STy>, Info) {
        match self.compile_select_inner(s) {
            Ok((cs, tys, info)) => (SelectPlan::Compiled(cs), tys, info),
            Err(Bail) => {
                // The interpreter resolves names dynamically, so an Interp
                // subplan may reference anything and fail in any way.
                let info = Info {
                    refs: BTreeSet::new(),
                    refs_all: true,
                    ty: STy::Any,
                    infallible: false,
                };
                (SelectPlan::Interp(s.clone()), Vec::new(), info)
            }
        }
    }

    fn compile_select_inner(
        &mut self,
        s: &SelectStmt,
    ) -> CResult<(CompiledSelect, Vec<STy>, Info)> {
        // Grouped and aggregate selects keep the interpreter's dedicated
        // machinery.
        let aggregated = s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            SelectItem::Wildcard => false,
        });
        if aggregated
            || !s.group_by.is_empty()
            || s.having.is_some()
            || s.order_by.iter().any(|o| contains_aggregate(&o.expr))
        {
            return Err(Bail);
        }

        // Sources and binding metadata.
        let mut metas = Vec::with_capacity(s.from.len());
        let mut sources = Vec::with_capacity(s.from.len());
        for item in &s.from {
            let (table, sref) = match &item.table {
                TableRef::Base(t) => {
                    self.catalog.table(t).map_err(|_| Bail)?;
                    (t.clone(), super::SourceRef::Base(t.clone()))
                }
                TableRef::Transition(tt) => {
                    let table = self.rule_table.ok_or(Bail)?.to_owned();
                    self.catalog.table(&table).map_err(|_| Bail)?;
                    (table, super::SourceRef::Transition(*tt))
                }
            };
            metas.push(SourceMeta {
                name: item.binding().to_owned(),
                table,
            });
            sources.push(SourcePlan {
                sref,
                pushed: Vec::new(),
                vpushed: Vec::new(),
                join: None,
            });
        }

        // Output column names (mirrors `output_columns`).
        let mut columns = Vec::new();
        for (i, item) in s.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for m in &metas {
                        let schema = self.catalog.table(&m.table).map_err(|_| Bail)?;
                        columns.extend(schema.column_names().map(str::to_owned));
                    }
                }
                SelectItem::Expr { expr, alias } => columns.push(match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column(c) => c.column.clone(),
                        _ => format!("col{}", i + 1),
                    },
                }),
            }
        }

        self.scopes.push(metas.clone());
        let my_abs = self.scopes.len() - 1;
        let body = self.compile_select_body(s, my_abs, metas, sources, columns);
        self.scopes.pop();
        let (cs, tys, mut info) = body?;
        // References to this select's own scope are satisfied internally;
        // only outer references propagate.
        info.refs.retain(|(abs, _)| *abs < my_abs);
        Ok((cs, tys, info))
    }

    /// The scoped part of select compilation (the caller pushes and pops
    /// the scope around this, on success and failure alike).
    fn compile_select_body(
        &mut self,
        s: &SelectStmt,
        my_abs: usize,
        metas: Vec<SourceMeta>,
        mut sources: Vec<SourcePlan>,
        columns: Vec<String>,
    ) -> CResult<(CompiledSelect, Vec<STy>, Info)> {
        let mut info = Info::constant(STy::Any);

        // Projection, with wildcards pre-expanded into slots.
        let mut proj = Vec::new();
        let mut tys = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (si, m) in metas.iter().enumerate() {
                        let schema = self.catalog.table(&m.table).map_err(|_| Bail)?;
                        for col in 0..schema.arity() {
                            proj.push(PExpr::Slot(Slot {
                                depth: 0,
                                source: si,
                                col,
                            }));
                            tys.push(STy::of_decl(schema.columns[col].ty));
                            info.refs.insert((my_abs, si));
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let (pe, ei) = self.compile_expr(expr)?;
                    tys.push(ei.ty);
                    info.absorb(&ei);
                    proj.push(pe);
                }
            }
        }

        // WHERE: flatten the AND-tree into conjuncts. When every conjunct
        // is infallible *and* statically boolean, no conjunct can ever
        // raise (not even `eval_bool`'s type error), so reordering cannot
        // change results (keep-iff-all-TRUE is order-independent without
        // errors) and each conjunct is pushed to the earliest point it can
        // run; otherwise the whole clause stays a single leaf filter in
        // original order.
        let mut pre = Vec::new();
        let mut filter = None;
        if let Some(w) = &s.where_clause {
            let mut conjuncts = Vec::new();
            flatten_and(w, &mut conjuncts);
            let mut compiled = Vec::with_capacity(conjuncts.len());
            for c in &conjuncts {
                compiled.push(self.compile_expr(c)?);
            }
            for (_, ci) in &compiled {
                info.absorb(ci);
            }
            if compiled
                .iter()
                .all(|(_, ci)| ci.infallible && ci.ty.boolish())
            {
                for (pc, ci) in compiled {
                    let last_local = ci
                        .refs
                        .iter()
                        .filter(|(abs, _)| *abs == my_abs)
                        .map(|(_, si)| *si)
                        .max();
                    match last_local {
                        None => pre.push(pc),
                        Some(si) => {
                            if sources[si].join.is_none() {
                                sources[si].join = self.detect_join(&pc, si);
                            }
                            // Conjuncts built purely from this source's own
                            // columns and constants vectorize (all conjuncts
                            // here are already infallible and boolean).
                            if self.vec_safe_pred(&pc, si) {
                                sources[si].vpushed.push(pc);
                            } else {
                                sources[si].pushed.push(pc);
                            }
                        }
                    }
                }
            } else {
                // Left-fold reassembly preserves the original leaf
                // evaluation order and short-circuit points exactly.
                let mut it = compiled.into_iter().map(|(pc, _)| pc);
                let first = it.next().expect("where clause has a conjunct");
                filter = Some(it.fold(first, |acc, pc| PExpr::Binary {
                    op: BinOp::And,
                    lhs: Box::new(acc),
                    rhs: Box::new(pc),
                }));
            }
        }

        let mut order_by = Vec::with_capacity(s.order_by.len());
        for o in &s.order_by {
            let (pe, ei) = self.compile_expr(&o.expr)?;
            info.absorb(&ei);
            order_by.push((pe, o.desc));
        }

        let cs = CompiledSelect {
            sources,
            metas,
            pre,
            filter,
            proj,
            distinct: s.distinct,
            order_by,
            columns,
            infallible: info.infallible,
        };
        Ok((cs, tys, info))
    }

    fn compile_action_inner(&mut self, a: &Action) -> CResult<ActionPlan> {
        match a {
            Action::Rollback => Ok(ActionPlan::Rollback),
            Action::Select(s) => {
                let (plan, _, _) = self.compile_subquery(s);
                Ok(ActionPlan::Select {
                    plan,
                    cache_slots: self.caches,
                })
            }
            Action::Insert(stmt) => {
                let source = match &stmt.source {
                    InsertSource::Values(tuples) => {
                        let mut out = Vec::with_capacity(tuples.len());
                        for t in tuples {
                            let mut row = Vec::with_capacity(t.len());
                            for e in t {
                                row.push(self.compile_expr(e)?.0);
                            }
                            out.push(row);
                        }
                        InsertSourcePlan::Values(out)
                    }
                    InsertSource::Select(s) => InsertSourcePlan::Select(self.compile_subquery(s).0),
                };
                let schema = self.catalog.table(&stmt.table).map_err(|_| Bail)?;
                let arity = schema.arity();
                let col_map = match &stmt.columns {
                    None => None,
                    Some(cols) => {
                        let mut indices = Vec::with_capacity(cols.len());
                        for c in cols {
                            indices.push(schema.column_index(c).ok_or(Bail)?);
                        }
                        Some(indices)
                    }
                };
                Ok(ActionPlan::Insert(InsertPlan {
                    table: stmt.table.clone(),
                    source,
                    col_map,
                    arity,
                    cache_slots: self.caches,
                }))
            }
            Action::Delete(stmt) => {
                self.catalog.table(&stmt.table).map_err(|_| Bail)?;
                let meta = SourceMeta {
                    name: stmt.table.clone(),
                    table: stmt.table.clone(),
                };
                let (pred, pred_vec) = match &stmt.where_clause {
                    None => (None, false),
                    Some(w) => {
                        let (pe, vec) = self.compile_scan_pred(&meta, w)?;
                        (Some(pe), vec)
                    }
                };
                Ok(ActionPlan::Delete(DeletePlan {
                    table: stmt.table.clone(),
                    meta,
                    pred,
                    pred_vec,
                    cache_slots: self.caches,
                }))
            }
            Action::Update(stmt) => {
                let schema = self.catalog.table(&stmt.table).map_err(|_| Bail)?;
                let mut set_indices = Vec::with_capacity(stmt.sets.len());
                for (c, _) in &stmt.sets {
                    set_indices.push(schema.column_index(c).ok_or(Bail)?);
                }
                let meta = SourceMeta {
                    name: stmt.table.clone(),
                    table: stmt.table.clone(),
                };
                let (pred, pred_vec) = match &stmt.where_clause {
                    None => (None, false),
                    Some(w) => {
                        let (pe, vec) = self.compile_scan_pred(&meta, w)?;
                        (Some(pe), vec)
                    }
                };
                let mut sets = Vec::with_capacity(stmt.sets.len());
                for (_, e) in &stmt.sets {
                    sets.push(self.compile_in_scope(&meta, e)?);
                }
                Ok(ActionPlan::Update(UpdatePlan {
                    table: stmt.table.clone(),
                    meta: meta.clone(),
                    set_indices,
                    set_cols: stmt.sets.iter().map(|(c, _)| c.clone()).collect(),
                    sets,
                    pred,
                    pred_vec,
                    cache_slots: self.caches,
                }))
            }
        }
    }

    /// Compiles an expression under a single-source scan scope (DELETE and
    /// UPDATE bind the target table's row exactly like the interpreter's
    /// `matching_tuples`).
    fn compile_in_scope(&mut self, meta: &SourceMeta, e: &Expr) -> CResult<PExpr> {
        self.scopes.push(vec![meta.clone()]);
        let r = self.compile_expr(e);
        self.scopes.pop();
        r.map(|(pe, _)| pe)
    }

    /// Compiles a DELETE/UPDATE `WHERE` under the scan scope and decides
    /// whether the whole predicate can run as a vector kernel over the
    /// target table's batch: it must be statically infallible *and*
    /// boolean (so whole-vector evaluation cannot surface an error or a
    /// type failure a per-row scan would order differently) on top of the
    /// structural `vec_safe_pred` check.
    fn compile_scan_pred(&mut self, meta: &SourceMeta, e: &Expr) -> CResult<(PExpr, bool)> {
        self.scopes.push(vec![meta.clone()]);
        let r = self.compile_expr(e);
        let out = r.map(|(pe, info)| {
            let vec = info.infallible && info.ty.boolish() && self.vec_safe_pred(&pe, 0);
            (pe, vec)
        });
        self.scopes.pop();
        out
    }

    /// Whether a compiled predicate can be evaluated by the vector kernels
    /// against source `si`'s batch: every node is in the kernel subset and
    /// every slot is a depth-0 column of `si` itself. Callers must also
    /// establish infallibility and boolean-ness (the pushdown gate does
    /// both), which is what licenses evaluating the predicate on rows the
    /// row path would have skipped.
    fn vec_safe_pred(&self, p: &PExpr, si: usize) -> bool {
        match p {
            PExpr::Const(v) => matches!(v, Value::Bool(_) | Value::Null),
            // A bare column only passes `eval_bool` when declared boolean.
            PExpr::Slot(s) => slot_is_local(s, si) && self.slot_decl_ty(s) == Some(ValueType::Bool),
            PExpr::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    self.vec_safe_pred(lhs, si) && self.vec_safe_pred(rhs, si)
                }
                op if op.is_comparison() => {
                    self.vec_safe_val(lhs, si) && self.vec_safe_val(rhs, si)
                }
                // Arithmetic is always fallible — never classified.
                _ => false,
            },
            PExpr::Not(x) => self.vec_safe_pred(x, si),
            PExpr::IsNull { expr, .. } => {
                self.vec_safe_val(expr, si) || self.vec_safe_pred(expr, si)
            }
            PExpr::Between {
                expr, low, high, ..
            } => {
                self.vec_safe_val(expr, si)
                    && self.vec_safe_val(low, si)
                    && self.vec_safe_val(high, si)
            }
            PExpr::InList { expr, list, .. } => {
                self.vec_safe_val(expr, si) && list.iter().all(|x| self.vec_safe_val(x, si))
            }
            PExpr::Like { expr, pattern, .. } => {
                self.vec_safe_val(expr, si) && matches!(pattern.as_ref(), PExpr::Const(_))
            }
            // Subqueries, Neg, arithmetic: row path.
            _ => false,
        }
    }

    /// Whether an expression is a kernel *value* operand: a constant or a
    /// depth-0 column of the source itself.
    fn vec_safe_val(&self, p: &PExpr, si: usize) -> bool {
        match p {
            PExpr::Const(_) => true,
            PExpr::Slot(s) => slot_is_local(s, si),
            _ => false,
        }
    }

    /// Recognizes a pushed conjunct of the shape `this.col = probe` (or the
    /// mirror image) where `probe` is a column of an earlier source or an
    /// outer scope, and the two columns share a declared non-float
    /// primitive type — the case where a structural hash index agrees with
    /// SQL equality (`NULL` build keys are skipped, `NULL` probes never
    /// match; a `Float` column may also store `Int` values, so floats are
    /// excluded).
    fn detect_join(&self, pc: &PExpr, si: usize) -> Option<JoinKey> {
        let PExpr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = pc
        else {
            return None;
        };
        let (build, probe) = match (lhs.as_ref(), rhs.as_ref()) {
            (PExpr::Slot(b), PExpr::Slot(p)) if slot_is_local(b, si) && !slot_is_local(p, si) => {
                (b, p)
            }
            (PExpr::Slot(p), PExpr::Slot(b)) if slot_is_local(b, si) && !slot_is_local(p, si) => {
                (b, p)
            }
            _ => return None,
        };
        // The probe must be bound before this source: an earlier source in
        // the same scope, or any outer scope.
        if probe.depth == 0 && probe.source >= si {
            return None;
        }
        let build_ty = self.slot_decl_ty(build)?;
        let probe_ty = self.slot_decl_ty(probe)?;
        if build_ty != probe_ty || build_ty == ValueType::Float {
            return None;
        }
        Some(JoinKey {
            build_col: build.col,
            probe: Box::new(PExpr::Slot(*probe)),
        })
    }

    /// Declared column type of a slot, resolved against the compile-time
    /// scope stack (the innermost scope is the select being compiled).
    fn slot_decl_ty(&self, s: &Slot) -> Option<ValueType> {
        let scope = self
            .scopes
            .get(self.scopes.len().checked_sub(1 + s.depth)?)?;
        let meta = scope.get(s.source)?;
        let schema = self.catalog.table(&meta.table).ok()?;
        Some(schema.columns.get(s.col)?.ty)
    }
}

/// Splits an `AND`-tree into its conjuncts, in evaluation order.
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        flatten_and(lhs, out);
        flatten_and(rhs, out);
    } else {
        out.push(e);
    }
}

fn slot_is_local(s: &Slot, si: usize) -> bool {
    s.depth == 0 && s.source == si
}

/// Result type of an arithmetic operator over static operand types.
fn arith_ty(a: STy, b: STy) -> STy {
    let int_ok = |t: STy| matches!(t, STy::Int | STy::Null);
    let num_ok = |t: STy| matches!(t, STy::Int | STy::Float | STy::Null);
    if int_ok(a) && int_ok(b) {
        STy::Int
    } else if num_ok(a) && num_ok(b) {
        STy::Float
    } else {
        STy::Any
    }
}

fn compiled_infallible(p: &SelectPlan) -> bool {
    matches!(p, SelectPlan::Compiled(cs) if cs.infallible)
}
