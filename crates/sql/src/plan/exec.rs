//! Plan execution over borrowed storage rows and columnar batches.
//!
//! The executor keeps a stack of row frames exactly like the interpreter's
//! [`Env`], but frames hold *borrowed* bindings ([`Bound`]: a `&Row`, or a
//! position in a table's cached columnar batch) instead of cloned rows, and
//! column access is positional. `Interp` fallback nodes rebuild an
//! interpreter environment from the current frames, so mixed plans still
//! agree with pure interpretation.
//!
//! In [`PlanMode::Columnar`], base-table scans borrow the table's cached
//! [`TableBatch`] and the compiler-classified `vpushed` conjuncts run as
//! whole-column kernels ([`super::vector`]) that flip selection-vector
//! bits; enumeration then walks only the set bits (ascending — scan
//! order), hash joins probe the batch's per-version cached column index,
//! and rows materialize back into `Row`s only at the DML / result-set
//! boundary. Everything not vectorizable (residual conjuncts, transition
//! tables, fallible filters, `Interp` nodes) executes exactly as in
//! [`PlanMode::Row`].

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use starling_storage::{Bitmap, Database, Row, TableBatch, TupleId, Value};

use crate::ast::BinOp;
use crate::error::SqlError;
use crate::eval::dml::exec_action;
use crate::eval::env::{Env, EvalCtx, RowBinding, TransitionBinding};
use crate::eval::expr::{
    and3, arith, cmp_bool, compare_values, eval_bool, in_result, is_true, like_values, neg_value,
    not3, sql_eq,
};
use crate::eval::select::eval_select;
use crate::eval::{ActionOutcome, DmlEffect, ResultSet};

use super::{
    vector, ActionPlan, CompiledSelect, CondPlan, DeletePlan, InsertPlan, InsertSourcePlan, PExpr,
    PlanMode, SelectPlan, SourceMeta, SourceRef, UpdatePlan,
};

/// Evaluates a compiled rule condition (3VL result, like `eval_bool`).
pub fn eval_condition(
    plan: &CondPlan,
    db: &Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<Value, SqlError> {
    match plan {
        CondPlan::Interp(e) => {
            let ctx = EvalCtx { db, transitions };
            let mut env = Env::new(&ctx);
            eval_bool(e, &mut env)
        }
        CondPlan::Compiled { pred, cache_slots } => {
            let mut ex = Exec::new(db, transitions, *cache_slots, mode);
            ex.eval_bool_p(pred)
        }
    }
}

/// Executes a select plan from an empty row scope.
pub fn execute_select(
    plan: &SelectPlan,
    cache_slots: usize,
    db: &Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<ResultSet, SqlError> {
    let mut ex = Exec::new(db, transitions, cache_slots, mode);
    ex.run_select_plan(plan)
}

/// Executes a compiled action statement, mirroring
/// [`crate::eval::exec_action`]'s two-phase semantics (including partial
/// state on mid-apply insert failures).
pub fn execute_action(
    plan: &ActionPlan,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<ActionOutcome, SqlError> {
    match plan {
        ActionPlan::Interp(a) => exec_action(a, db, transitions),
        ActionPlan::Rollback => Ok(ActionOutcome::Rollback),
        ActionPlan::Select { plan, cache_slots } => {
            let mut ex = Exec::new(db, transitions, *cache_slots, mode);
            ex.run_select_plan(plan).map(ActionOutcome::Rows)
        }
        ActionPlan::Insert(ip) => exec_insert_plan(ip, db, transitions, mode),
        ActionPlan::Delete(dp) => exec_delete_plan(dp, db, transitions, mode),
        ActionPlan::Update(up) => exec_update_plan(up, db, transitions, mode),
    }
}

fn exec_insert_plan(
    ip: &InsertPlan,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<ActionOutcome, SqlError> {
    // Phase 1: evaluate all source rows against the pre-statement state.
    let rows: Vec<Row> = {
        let mut ex = Exec::new(&*db, transitions, ip.cache_slots, mode);
        match &ip.source {
            InsertSourcePlan::Values(tuples) => {
                let mut out = Vec::with_capacity(tuples.len());
                for t in tuples {
                    let mut row = Vec::with_capacity(t.len());
                    for pe in t {
                        row.push(ex.eval(pe)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSourcePlan::Select(sp) => ex.run_select_plan(sp)?.rows,
        }
    };
    let full_rows: Vec<Row> = match &ip.col_map {
        None => rows,
        Some(indices) => rows
            .into_iter()
            .map(|r| {
                let mut full = vec![Value::Null; ip.arity];
                for (i, v) in indices.iter().zip(r) {
                    full[*i] = v;
                }
                full
            })
            .collect(),
    };

    // Phase 2: apply.
    let mut effects = Vec::with_capacity(full_rows.len());
    for row in full_rows {
        let id = db.insert(&ip.table, row.clone())?;
        effects.push(DmlEffect::Insert {
            table: ip.table.clone(),
            id,
            row,
        });
    }
    Ok(ActionOutcome::Effects(effects))
}

fn exec_delete_plan(
    dp: &DeletePlan,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<ActionOutcome, SqlError> {
    let victims = scan_matching(
        db,
        transitions,
        &dp.meta,
        dp.pred.as_ref(),
        dp.pred_vec,
        dp.cache_slots,
        mode,
    )?;
    let mut effects = Vec::with_capacity(victims.len());
    for (id, _) in victims {
        let old = db.delete(&dp.table, id)?;
        effects.push(DmlEffect::Delete {
            table: dp.table.clone(),
            id,
            old,
        });
    }
    Ok(ActionOutcome::Effects(effects))
}

fn exec_update_plan(
    up: &UpdatePlan,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
    mode: PlanMode,
) -> Result<ActionOutcome, SqlError> {
    // Phase 1: pick targets and compute new rows against the old state.
    let targets = scan_matching(
        db,
        transitions,
        &up.meta,
        up.pred.as_ref(),
        up.pred_vec,
        up.cache_slots,
        mode,
    )?;
    let mut planned: Vec<(TupleId, Row, Row)> = Vec::with_capacity(targets.len());
    {
        let mut ex = Exec::new(&*db, transitions, up.cache_slots, mode);
        let metas = std::slice::from_ref(&up.meta);
        for (id, old) in &targets {
            ex.scopes.push(Frame {
                metas,
                rows: vec![Some(Bound::Row(old))],
            });
            let mut new = old.clone();
            let mut err = None;
            for (idx, pe) in up.set_indices.iter().zip(&up.sets) {
                match ex.eval(pe) {
                    Ok(v) => new[*idx] = v,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            ex.scopes.pop();
            if let Some(e) = err {
                return Err(e);
            }
            planned.push((*id, old.clone(), new));
        }
    }

    // Phase 2: apply.
    let mut effects = Vec::with_capacity(planned.len());
    for (id, old, new) in planned {
        db.update(&up.table, id, new.clone())?;
        effects.push(DmlEffect::Update {
            table: up.table.clone(),
            id,
            old,
            new,
            cols: up.set_cols.clone(),
        });
    }
    Ok(ActionOutcome::Effects(effects))
}

/// Tuples of the scan table satisfying the compiled predicate, in id
/// order (the interpreter's `matching_tuples`, minus the per-row clones —
/// only matching rows are copied out).
///
/// With a vectorizable predicate in columnar mode, the whole scan is one
/// kernel evaluation over the table's cached batch; victims materialize
/// from the selection's set bits, which are ascending and therefore in id
/// order like the row path.
fn scan_matching(
    db: &Database,
    transitions: Option<&TransitionBinding>,
    meta: &SourceMeta,
    pred: Option<&PExpr>,
    pred_vec: bool,
    cache_slots: usize,
    mode: PlanMode,
) -> Result<Vec<(TupleId, Row)>, SqlError> {
    let tbl = db.table(&meta.table)?;
    let Some(p) = pred else {
        return Ok(tbl.iter().map(|(id, r)| (id, r.clone())).collect());
    };
    if pred_vec && mode == PlanMode::Columnar {
        let batch = tbl.columnar();
        let sel = vector::eval_pred(p, batch)?;
        return Ok(sel
            .t
            .iter_ones()
            .map(|pos| (batch.ids()[pos], batch.row(pos)))
            .collect());
    }
    let mut ex = Exec::new(db, transitions, cache_slots, mode);
    let metas = std::slice::from_ref(meta);
    let mut out = Vec::new();
    for (id, row) in tbl.iter() {
        ex.scopes.push(Frame {
            metas,
            rows: vec![Some(Bound::Row(row))],
        });
        let v = ex.eval_bool_p(p);
        ex.scopes.pop();
        if is_true(&v?) {
            out.push((id, row.clone()));
        }
    }
    Ok(out)
}

/// One bound source row: a borrowed `Row`, or a position in a borrowed
/// columnar batch (column access materializes single values on demand;
/// whole rows materialize only at `Interp` fallbacks and DML boundaries).
#[derive(Clone, Copy)]
enum Bound<'a> {
    Row(&'a Row),
    Batch(&'a TableBatch, u32),
}

impl Bound<'_> {
    /// The value of column `col`.
    #[inline]
    fn value(&self, col: usize) -> Value {
        match self {
            Bound::Row(r) => r[col].clone(),
            Bound::Batch(b, pos) => b.value(*pos as usize, col),
        }
    }

    /// The full row (for interpreter fallbacks).
    fn to_row(self) -> Row {
        match self {
            Bound::Row(r) => r.clone(),
            Bound::Batch(b, pos) => b.row(pos as usize),
        }
    }
}

/// Rows of one compiled source, as the executor scans them.
enum Src<'a> {
    /// Borrowed row vector (row mode; transition tables in every mode).
    Rows(Vec<&'a Row>),
    /// A table's cached columnar batch plus the selection produced by its
    /// `vpushed` kernels (`None` = all rows; avoids an all-ones bitmap for
    /// unfiltered scans).
    Batch {
        batch: &'a TableBatch,
        sel: Option<Bitmap>,
    },
}

/// One frame of bound source rows. `rows[i]` is `None` until the
/// enumerator binds source `i` (plan resolution guarantees no expression
/// reads an unbound slot).
struct Frame<'a, 'p> {
    metas: &'p [SourceMeta],
    rows: Vec<Option<Bound<'a>>>,
}

/// Cached result of an uncorrelated subquery, fixed for one statement
/// execution.
#[derive(Clone)]
enum Cached {
    /// An `EXISTS` verdict (early-exit path).
    Bool(bool),
    /// Materialized subquery rows.
    Rows(Rc<Vec<Row>>),
}

/// The plan executor: database, transition binding, frame stack, and
/// subquery caches.
struct Exec<'a, 'p> {
    db: &'a Database,
    transitions: Option<&'a TransitionBinding>,
    scopes: Vec<Frame<'a, 'p>>,
    caches: Vec<Option<Cached>>,
    mode: PlanMode,
}

impl<'a, 'p> Exec<'a, 'p> {
    fn new(
        db: &'a Database,
        transitions: Option<&'a TransitionBinding>,
        cache_slots: usize,
        mode: PlanMode,
    ) -> Self {
        Exec {
            db,
            transitions,
            scopes: Vec::new(),
            caches: vec![None; cache_slots],
            mode,
        }
    }

    /// Mirrors `eval_expr` over compiled nodes, delegating to the shared
    /// 3VL primitives so semantics cannot drift.
    fn eval(&mut self, e: &'p PExpr) -> Result<Value, SqlError> {
        match e {
            PExpr::Const(v) => Ok(v.clone()),
            PExpr::Slot(s) => {
                let unbound = || SqlError::eval("internal: unbound plan slot");
                let fi = self
                    .scopes
                    .len()
                    .checked_sub(1 + s.depth)
                    .ok_or_else(unbound)?;
                let bound = self.scopes[fi]
                    .rows
                    .get(s.source)
                    .copied()
                    .flatten()
                    .ok_or_else(unbound)?;
                Ok(bound.value(s.col))
            }
            PExpr::Binary { op, lhs, rhs } => match *op {
                BinOp::And => {
                    // Kleene AND with short circuit on FALSE.
                    let l = self.eval_bool_p(lhs)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.eval_bool_p(rhs)?;
                    Ok(and3(l, r))
                }
                BinOp::Or => {
                    let l = self.eval_bool_p(lhs)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.eval_bool_p(rhs)?;
                    Ok(or3_like(l, r))
                }
                op if op.is_comparison() => {
                    let l = self.eval(lhs)?;
                    let r = self.eval(rhs)?;
                    compare_values(op, &l, &r)
                }
                op => {
                    let l = self.eval(lhs)?;
                    let r = self.eval(rhs)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    arith(op, &l, &r)
                }
            },
            PExpr::Neg(x) => neg_value(self.eval(x)?),
            PExpr::Not(x) => Ok(not3(self.eval_bool_p(x)?)),
            PExpr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            PExpr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = self.eval(expr)?;
                let mut any_unknown = false;
                let mut found = false;
                for cand in list {
                    let v = self.eval(cand)?;
                    match sql_eq(&needle, &v) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                Ok(in_result(found, any_unknown, *negated))
            }
            PExpr::InSelect {
                expr,
                select,
                negated,
                cache,
            } => {
                let needle = self.eval(expr)?;
                let rows = self.select_rows(select, *cache)?;
                let mut any_unknown = false;
                let mut found = false;
                for row in rows.iter() {
                    match sql_eq(&needle, &row[0]) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                Ok(in_result(found, any_unknown, *negated))
            }
            PExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr)?;
                let lo = self.eval(low)?;
                let hi = self.eval(high)?;
                let ge_lo = cmp_bool(&v, &lo, |o| o != Ordering::Less);
                let le_hi = cmp_bool(&v, &hi, |o| o != Ordering::Greater);
                let both = and3(ge_lo, le_hi);
                Ok(if *negated { not3(both) } else { both })
            }
            PExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr)?;
                let p = self.eval(pattern)?;
                like_values(v, p, *negated)
            }
            PExpr::Exists { select, cache } => Ok(Value::Bool(self.exists(select, *cache)?)),
            PExpr::Scalar { select, cache } => {
                let rows = self.select_rows(select, *cache)?;
                match rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rows[0][0].clone()),
                    n => Err(SqlError::eval(format!("scalar subquery returned {n} rows"))),
                }
            }
        }
    }

    /// Mirrors `eval_bool`: the result must be boolean-valued (3VL).
    fn eval_bool_p(&mut self, e: &'p PExpr) -> Result<Value, SqlError> {
        match self.eval(e)? {
            v @ (Value::Bool(_) | Value::Null) => Ok(v),
            v => Err(SqlError::eval(format!("expected boolean, got {v}"))),
        }
    }

    /// `EXISTS` with cache and (for infallible compiled subplans) early
    /// exit at the first matching row.
    fn exists(&mut self, plan: &'p SelectPlan, cache: Option<usize>) -> Result<bool, SqlError> {
        if let Some(slot) = cache {
            match &self.caches[slot] {
                Some(Cached::Bool(b)) => return Ok(*b),
                Some(Cached::Rows(r)) => return Ok(!r.is_empty()),
                None => {}
            }
        }
        let found = match plan {
            SelectPlan::Compiled(cs) if cs.infallible => {
                let mut found = false;
                self.exec_compiled(cs, &mut |_| {
                    found = true;
                    Ok(true)
                })?;
                found
            }
            // Fallible subqueries are fully materialized so errors surface
            // exactly as under interpretation.
            _ => !self.select_rows(plan, cache)?.is_empty(),
        };
        if let Some(slot) = cache {
            if self.caches[slot].is_none() {
                self.caches[slot] = Some(Cached::Bool(found));
            }
        }
        Ok(found)
    }

    /// Materialized rows of a subquery, with caching for uncorrelated ones.
    fn select_rows(
        &mut self,
        plan: &'p SelectPlan,
        cache: Option<usize>,
    ) -> Result<Rc<Vec<Row>>, SqlError> {
        if let Some(slot) = cache {
            if let Some(Cached::Rows(r)) = &self.caches[slot] {
                return Ok(Rc::clone(r));
            }
        }
        let rs = self.run_select_plan(plan)?;
        let rc = Rc::new(rs.rows);
        if let Some(slot) = cache {
            self.caches[slot] = Some(Cached::Rows(Rc::clone(&rc)));
        }
        Ok(rc)
    }

    /// Runs a select plan to a full result set.
    fn run_select_plan(&mut self, plan: &'p SelectPlan) -> Result<ResultSet, SqlError> {
        match plan {
            SelectPlan::Compiled(cs) => self.exec_select_result(cs),
            SelectPlan::Interp(stmt) => {
                // Rebuild the interpreter environment from the current
                // frames (outermost first), cloning only the bound rows.
                let ctx = EvalCtx {
                    db: self.db,
                    transitions: self.transitions,
                };
                let mut env = Env::new(&ctx);
                for frame in &self.scopes {
                    let bindings: Vec<RowBinding> = frame
                        .metas
                        .iter()
                        .zip(&frame.rows)
                        .filter_map(|(m, r)| {
                            r.map(|bound| RowBinding {
                                name: m.name.clone(),
                                table: m.table.clone(),
                                row: bound.to_row(),
                            })
                        })
                        .collect();
                    env.push(bindings);
                }
                eval_select(stmt, &mut env)
            }
        }
    }

    /// Full pipeline: enumerate, project, DISTINCT, ORDER BY.
    fn exec_select_result(&mut self, cs: &'p CompiledSelect) -> Result<ResultSet, SqlError> {
        let mut rows: Vec<Row> = Vec::new();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        self.exec_compiled(cs, &mut |ex| {
            let mut row = Vec::with_capacity(cs.proj.len());
            for p in &cs.proj {
                row.push(ex.eval(p)?);
            }
            let mut k = Vec::with_capacity(cs.order_by.len());
            for (p, _) in &cs.order_by {
                k.push(ex.eval(p)?);
            }
            rows.push(row);
            keys.push(k);
            Ok(false)
        })?;

        if cs.distinct {
            let mut seen: BTreeSet<Row> = BTreeSet::new();
            let mut kept_rows = Vec::with_capacity(rows.len());
            let mut kept_keys = Vec::with_capacity(rows.len());
            for (row, key) in rows.into_iter().zip(keys) {
                if seen.contains(&row) {
                    continue;
                }
                seen.insert(row.clone());
                kept_rows.push(row);
                kept_keys.push(key);
            }
            rows = kept_rows;
            keys = kept_keys;
        }

        if !cs.order_by.is_empty() {
            let mut indexed: Vec<usize> = (0..rows.len()).collect();
            indexed.sort_by(|&a, &b| {
                for (i, (_, desc)) in cs.order_by.iter().enumerate() {
                    let ord = keys[a][i].cmp(&keys[b][i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            rows = indexed
                .into_iter()
                .map(|i| std::mem::take(&mut rows[i]))
                .collect();
        }

        Ok(ResultSet {
            columns: cs.columns.clone(),
            rows,
        })
    }

    /// Collects source rows (borrowed rows, or columnar batches with their
    /// kernel-computed selections), pushes the frame, evaluates `pre`
    /// conjuncts once, and enumerates matching combinations; `on_leaf`
    /// runs per surviving leaf and returns `true` to stop early.
    fn exec_compiled(
        &mut self,
        cs: &'p CompiledSelect,
        on_leaf: &mut dyn FnMut(&mut Self) -> Result<bool, SqlError>,
    ) -> Result<(), SqlError> {
        let db = self.db;
        let transitions = self.transitions;
        let mut srcs: Vec<Src<'a>> = Vec::with_capacity(cs.sources.len());
        for sp in &cs.sources {
            match &sp.sref {
                SourceRef::Base(t) => {
                    let tbl = db.table(t)?;
                    if self.mode == PlanMode::Columnar {
                        let batch = tbl.columnar();
                        // Fold this source's vectorizable conjuncts into one
                        // selection: a row survives iff every conjunct is
                        // TRUE (`is_true`), i.e. the AND of the `t` bitmaps.
                        let mut sel: Option<Bitmap> = None;
                        for p in &sp.vpushed {
                            let b = vector::eval_pred(p, batch)?;
                            match &mut sel {
                                None => sel = Some(b.t),
                                Some(s) => s.and_assign(&b.t),
                            }
                        }
                        srcs.push(Src::Batch { batch, sel });
                    } else {
                        srcs.push(Src::Rows(tbl.rows().collect()));
                    }
                }
                SourceRef::Transition(tt) => {
                    let b = transitions.ok_or_else(|| {
                        SqlError::eval(format!(
                            "transition table `{}` referenced outside a rule",
                            tt.name()
                        ))
                    })?;
                    srcs.push(Src::Rows(b.rows(*tt).iter().collect()));
                }
            }
        }
        self.scopes.push(Frame {
            metas: &cs.metas,
            rows: vec![None; cs.sources.len()],
        });
        let result = self.exec_enum(cs, &srcs, on_leaf);
        self.scopes.pop();
        result
    }

    fn exec_enum(
        &mut self,
        cs: &'p CompiledSelect,
        srcs: &[Src<'a>],
        on_leaf: &mut dyn FnMut(&mut Self) -> Result<bool, SqlError>,
    ) -> Result<(), SqlError> {
        // Source-independent conjuncts: any non-TRUE value empties the
        // result (all conjuncts here are infallible by construction, so
        // hoisting them out of the product is unobservable).
        for p in &cs.pre {
            if !is_true(&self.eval_bool_p(p)?) {
                return Ok(());
            }
        }
        let mut joins: Vec<Option<BTreeMap<Value, Vec<usize>>>> = vec![None; cs.sources.len()];
        self.enum_rec(cs, srcs, &mut joins, 0, on_leaf).map(|_| ())
    }

    fn enum_rec(
        &mut self,
        cs: &'p CompiledSelect,
        srcs: &[Src<'a>],
        joins: &mut [Option<BTreeMap<Value, Vec<usize>>>],
        i: usize,
        on_leaf: &mut dyn FnMut(&mut Self) -> Result<bool, SqlError>,
    ) -> Result<bool, SqlError> {
        if i == cs.sources.len() {
            if let Some(f) = &cs.filter {
                if !is_true(&self.eval_bool_p(f)?) {
                    return Ok(false);
                }
            }
            return on_leaf(self);
        }
        if let Some(jk) = &cs.sources[i].join {
            let probe = self.eval(&jk.probe)?;
            if probe.is_null() {
                return Ok(false);
            }
            match &srcs[i] {
                Src::Batch { batch, sel } => {
                    // Probe the batch's cached per-version index: hits are
                    // ascending positions (scan order), filtered through
                    // the selection.
                    if let Some(hits) = batch.hash_index(jk.build_col).get(&probe) {
                        for &pos in hits {
                            let pos = pos as usize;
                            if sel.as_ref().is_none_or(|s| s.get(pos))
                                && self.bind_and_descend(cs, srcs, joins, i, pos, on_leaf)?
                            {
                                return Ok(true);
                            }
                        }
                    }
                }
                Src::Rows(rows) => {
                    if joins[i].is_none() {
                        // Lazy build: index this source's rows by the join
                        // column, in scan order (so matches enumerate in the
                        // same order a nested loop would), skipping NULL
                        // keys (never equal).
                        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
                        for (pos, row) in rows.iter().enumerate() {
                            let key = &row[jk.build_col];
                            if !key.is_null() {
                                map.entry(key.clone()).or_default().push(pos);
                            }
                        }
                        joins[i] = Some(map);
                    }
                    let hits = joins[i]
                        .as_ref()
                        .expect("join index built above")
                        .get(&probe)
                        .cloned()
                        .unwrap_or_default();
                    for pos in hits {
                        if self.bind_and_descend(cs, srcs, joins, i, pos, on_leaf)? {
                            return Ok(true);
                        }
                    }
                }
            }
        } else {
            match &srcs[i] {
                Src::Rows(rows) => {
                    for pos in 0..rows.len() {
                        if self.bind_and_descend(cs, srcs, joins, i, pos, on_leaf)? {
                            return Ok(true);
                        }
                    }
                }
                Src::Batch { batch, sel } => match sel {
                    None => {
                        for pos in 0..batch.len() {
                            if self.bind_and_descend(cs, srcs, joins, i, pos, on_leaf)? {
                                return Ok(true);
                            }
                        }
                    }
                    // Walk only the selection's set bits (ascending = scan
                    // order), never materializing the filtered-out rows.
                    Some(s) => {
                        for pos in s.iter_ones() {
                            if self.bind_and_descend(cs, srcs, joins, i, pos, on_leaf)? {
                                return Ok(true);
                            }
                        }
                    }
                },
            }
        }
        Ok(false)
    }

    /// Binds source `i` to row `pos`, checks its pushed conjuncts, and
    /// recurses to the next source. For batch sources the `vpushed`
    /// conjuncts were already applied by the selection kernels; row
    /// sources (row mode, transition tables) check them per row here.
    fn bind_and_descend(
        &mut self,
        cs: &'p CompiledSelect,
        srcs: &[Src<'a>],
        joins: &mut [Option<BTreeMap<Value, Vec<usize>>>],
        i: usize,
        pos: usize,
        on_leaf: &mut dyn FnMut(&mut Self) -> Result<bool, SqlError>,
    ) -> Result<bool, SqlError> {
        let (bound, vpushed_done) = match &srcs[i] {
            Src::Rows(rows) => (Bound::Row(rows[pos]), false),
            Src::Batch { batch, .. } => (Bound::Batch(batch, pos as u32), true),
        };
        let fi = self.scopes.len() - 1;
        self.scopes[fi].rows[i] = Some(bound);
        if !vpushed_done {
            for p in &cs.sources[i].vpushed {
                if !is_true(&self.eval_bool_p(p)?) {
                    return Ok(false);
                }
            }
        }
        for p in &cs.sources[i].pushed {
            if !is_true(&self.eval_bool_p(p)?) {
                return Ok(false);
            }
        }
        self.enum_rec(cs, srcs, joins, i + 1, on_leaf)
    }
}

/// Kleene OR (the `or3` primitive, aliased to keep the `eval` match arms
/// symmetric with the interpreter's short-circuit structure).
fn or3_like(a: Value, b: Value) -> Value {
    crate::eval::expr::or3(a, b)
}
