//! Compiled physical plans for rule conditions and actions.
//!
//! The evaluator in [`crate::eval`] re-interprets raw ASTs: every execution
//! resolves column names by string lookup, clones each `FROM` table into a
//! `Vec<Row>`, and enumerates the full cross product. Rules are the
//! opposite workload — a *fixed* condition and action list evaluated
//! thousands of times over changing states — so this module lowers
//! validated ASTs once into plans with:
//!
//! * columns resolved to positional [`Slot`]s (scope depth, source index,
//!   column index) against the catalog;
//! * constant subexpressions folded at compile time;
//! * single-table predicates pushed into the owning scan ([`SourcePlan::
//!   pushed`]), with conjuncts free of local references hoisted out of the
//!   enumeration entirely ([`CompiledSelect::pre`]);
//! * equality joins executed by hash lookup ([`JoinKey`]) instead of
//!   nested-loop cross product;
//! * execution over *borrowed* rows from storage (no per-source table
//!   copies, no per-row binding clones); and
//! * uncorrelated subqueries computed once per statement execution and
//!   cached (`cache` slots).
//!
//! Compilation is **total**: anything outside the compilable subset
//! (grouped/aggregate selects, unresolvable names, transition tables
//! outside a rule) falls back to an `Interp` plan node that carries the
//! original AST and delegates to [`crate::eval`] at execution time. The
//! interpreter therefore stays the semantic oracle; the invariant —
//! enforced by `tests/plan_props.rs` — is that a compiled plan and the
//! interpreter produce identical results (or both fail) on every input.
//!
//! Predicate pushdown and conjunct reordering are only applied when *every*
//! `WHERE` conjunct is statically infallible (cannot raise an evaluation
//! error), because reordering fallible conjuncts could change which error
//! surfaces or turn an error into a result. Otherwise the whole `WHERE`
//! is kept as a single filter evaluated at the leaves in original order.

mod compile;
mod exec;
pub mod vector;

use starling_storage::Value;

use crate::ast::{Action, Expr, SelectStmt, TransitionTable};

pub use compile::{compile_action, compile_condition, compile_rule, compile_select};
pub use exec::{eval_condition, execute_action, execute_select};

/// How compiled plans execute their scans and filters.
///
/// Both modes run the *same* plans and produce byte-identical results
/// (enumeration order included) — `Columnar` is a pure execution-strategy
/// switch, kept selectable so the row path stays alive as a differential
/// oracle for the vectorized kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    /// Row-at-a-time: scans collect `&Row` vectors and every pushed
    /// conjunct is evaluated once per bound row (the PR-3 engine).
    Row,
    /// Batch-oriented: base-table scans borrow the table's cached columnar
    /// view, vectorizable conjuncts ([`SourcePlan::vpushed`]) run as
    /// whole-column kernels flipping selection-vector bits, and hash joins
    /// probe per-version cached column indexes. Non-vectorizable units
    /// (residual conjuncts, transition-table scans, `Interp` fallbacks)
    /// execute exactly as in `Row` mode, at statement granularity.
    Columnar,
}

/// A resolved column reference: `depth` scopes out from the innermost
/// (0 = the enclosing select's own scope), then `source` within that
/// scope's `FROM` list, then `col` within the source's row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Scope distance from the innermost frame at evaluation time.
    pub depth: usize,
    /// Source (FROM item) index within that scope.
    pub source: usize,
    /// Column index within the source's row.
    pub col: usize,
}

/// Binding metadata of one compiled source (mirrors the interpreter's
/// `RowBinding` names so `Interp` fallbacks can rebuild an [`crate::eval::
/// Env`] mid-plan).
#[derive(Clone, Debug)]
pub struct SourceMeta {
    /// In-scope binding name (alias or table name).
    pub name: String,
    /// Schema table the rows conform to.
    pub table: String,
}

/// Where a compiled source's rows come from.
#[derive(Clone, Debug)]
pub enum SourceRef {
    /// A base table, scanned from storage by name.
    Base(String),
    /// One of the rule's transition tables, bound at evaluation time.
    Transition(TransitionTable),
}

/// An equality-join key: rows of this source are indexed by `build_col`
/// and probed with `probe` (which only references earlier sources and
/// outer scopes), replacing the nested-loop scan with a hash lookup.
///
/// Only emitted when the build column's declared type and the probe's
/// static type are the same non-float primitive, so the index's structural
/// equality coincides with SQL equality (`NULL` never matches).
#[derive(Clone, Debug)]
pub struct JoinKey {
    /// Column of this source the index is built on.
    pub build_col: usize,
    /// Probe expression over earlier sources / outer scopes.
    pub probe: Box<PExpr>,
}

/// One compiled `FROM` item.
#[derive(Clone, Debug)]
pub struct SourcePlan {
    /// Row provenance.
    pub sref: SourceRef,
    /// Conjuncts evaluable as soon as this source's row is bound
    /// (references only sources up to this one, plus outer scopes).
    pub pushed: Vec<PExpr>,
    /// The subset of this source's single-source conjuncts that the
    /// compiler proved *vectorizable*: infallible, boolean-typed, and
    /// built only from this source's own columns and constants. In
    /// [`PlanMode::Columnar`] they run as whole-column kernels producing a
    /// selection bitmap before enumeration; in [`PlanMode::Row`] (or for
    /// transition-table sources, which have no columnar view) they are
    /// checked per row exactly like `pushed`. Order between `vpushed` and
    /// `pushed` is immaterial: both sets are statically infallible.
    pub vpushed: Vec<PExpr>,
    /// Optional hash-join key for this source.
    pub join: Option<JoinKey>,
}

/// A compiled scalar/predicate expression. Structure mirrors
/// [`crate::ast::Expr`] with names resolved and constants folded;
/// evaluation semantics (3VL, error behavior) are identical.
#[derive(Clone, Debug)]
pub enum PExpr {
    /// A constant (literal or folded subexpression).
    Const(Value),
    /// A resolved column reference.
    Slot(Slot),
    /// Binary operator (comparison, arithmetic, `AND`/`OR`).
    Binary {
        /// The operator.
        op: crate::ast::BinOp,
        /// Left operand.
        lhs: Box<PExpr>,
        /// Right operand.
        rhs: Box<PExpr>,
    },
    /// Unary minus.
    Neg(Box<PExpr>),
    /// Logical negation.
    Not(Box<PExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<PExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Needle.
        expr: Box<PExpr>,
        /// Candidates.
        list: Vec<PExpr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `[NOT] IN (subquery)`.
    InSelect {
        /// Needle.
        expr: Box<PExpr>,
        /// Subquery plan.
        select: Box<SelectPlan>,
        /// `NOT IN` when true.
        negated: bool,
        /// Cache slot when the subquery is uncorrelated.
        cache: Option<usize>,
    },
    /// `[NOT] BETWEEN low AND high`.
    Between {
        /// Tested value.
        expr: Box<PExpr>,
        /// Lower bound.
        low: Box<PExpr>,
        /// Upper bound.
        high: Box<PExpr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Tested value.
        expr: Box<PExpr>,
        /// Pattern.
        pattern: Box<PExpr>,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `EXISTS (subquery)`. When the subquery is compiled and infallible,
    /// execution stops at the first matching row.
    Exists {
        /// Subquery plan.
        select: Box<SelectPlan>,
        /// Cache slot when the subquery is uncorrelated.
        cache: Option<usize>,
    },
    /// A scalar subquery (0 rows → `NULL`, >1 rows → error).
    Scalar {
        /// Subquery plan.
        select: Box<SelectPlan>,
        /// Cache slot when the subquery is uncorrelated.
        cache: Option<usize>,
    },
}

/// A select: either fully compiled, or the original AST for interpreter
/// fallback (grouped/aggregate queries, unresolvable names).
#[derive(Clone, Debug)]
pub enum SelectPlan {
    /// Compiled pipeline.
    Compiled(CompiledSelect),
    /// Interpreter fallback (evaluated via [`crate::eval::eval_select`]
    /// with the current plan scopes rebuilt as an environment).
    Interp(SelectStmt),
}

/// A fully compiled select pipeline.
#[derive(Clone, Debug)]
pub struct CompiledSelect {
    /// Sources in `FROM` order, with pushed predicates and join keys.
    pub sources: Vec<SourcePlan>,
    /// Binding metadata per source (for `Interp` sub-fallbacks).
    pub metas: Vec<SourceMeta>,
    /// Conjuncts with no references to this select's own sources:
    /// evaluated once before enumeration; any non-TRUE value empties the
    /// result.
    pub pre: Vec<PExpr>,
    /// The residual `WHERE` filter evaluated at each leaf (only present
    /// when pushdown was not legal; `pushed`/`pre` are then empty).
    pub filter: Option<PExpr>,
    /// Projection expressions (wildcards pre-expanded to slots).
    pub proj: Vec<PExpr>,
    /// DISTINCT flag.
    pub distinct: bool,
    /// ORDER BY keys with per-key descending flags.
    pub order_by: Vec<(PExpr, bool)>,
    /// Output column names (precomputed, matching the interpreter).
    pub columns: Vec<String>,
    /// Whether execution can never raise an evaluation error. Gates the
    /// `EXISTS` early-exit.
    pub infallible: bool,
}

/// A compiled rule condition.
#[derive(Clone, Debug)]
pub enum CondPlan {
    /// Compiled predicate plus the number of subquery cache slots it uses.
    Compiled {
        /// The predicate.
        pred: PExpr,
        /// Cache slots to allocate per evaluation.
        cache_slots: usize,
    },
    /// Interpreter fallback.
    Interp(Expr),
}

/// The compiled form of one rule: condition plan plus one plan per action.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// Condition plan (`None` for unconditional rules).
    pub condition: Option<CondPlan>,
    /// Action plans, in definition order.
    pub actions: Vec<ActionPlan>,
}

/// A compiled action statement.
#[derive(Clone, Debug)]
pub enum ActionPlan {
    /// Compiled `INSERT`.
    Insert(InsertPlan),
    /// Compiled `DELETE`.
    Delete(DeletePlan),
    /// Compiled `UPDATE`.
    Update(UpdatePlan),
    /// Compiled `SELECT` (observable action).
    Select {
        /// The select plan.
        plan: SelectPlan,
        /// Cache slots to allocate per execution.
        cache_slots: usize,
    },
    /// `ROLLBACK`.
    Rollback,
    /// Interpreter fallback for the whole statement.
    Interp(Action),
}

/// Source rows of a compiled `INSERT`.
#[derive(Clone, Debug)]
pub enum InsertSourcePlan {
    /// `VALUES` tuples.
    Values(Vec<Vec<PExpr>>),
    /// `INSERT ... SELECT`.
    Select(SelectPlan),
}

/// A compiled `INSERT`: evaluate sources against the pre-statement state,
/// widen through the column map, then apply.
#[derive(Clone, Debug)]
pub struct InsertPlan {
    /// Target table.
    pub table: String,
    /// Row source.
    pub source: InsertSourcePlan,
    /// Resolved explicit column list (`None` = full-row inserts).
    pub col_map: Option<Vec<usize>>,
    /// Target table arity (for NULL-filling with a column list).
    pub arity: usize,
    /// Cache slots to allocate per execution.
    pub cache_slots: usize,
}

/// A compiled `DELETE`: scan, filter, then apply.
#[derive(Clone, Debug)]
pub struct DeletePlan {
    /// Target table.
    pub table: String,
    /// Binding metadata for the scan frame.
    pub meta: SourceMeta,
    /// Compiled `WHERE` (absent = delete all).
    pub pred: Option<PExpr>,
    /// Whether `pred` is vectorizable (see [`SourcePlan::vpushed`]): in
    /// columnar mode the victim scan runs as a kernel over the target
    /// table's batch instead of per-row frame evaluation.
    pub pred_vec: bool,
    /// Cache slots to allocate per execution.
    pub cache_slots: usize,
}

/// A compiled `UPDATE`: scan, filter, evaluate `SET` expressions against
/// the old rows, then apply.
#[derive(Clone, Debug)]
pub struct UpdatePlan {
    /// Target table.
    pub table: String,
    /// Binding metadata for the scan / SET frames.
    pub meta: SourceMeta,
    /// Resolved `SET` target column indices.
    pub set_indices: Vec<usize>,
    /// `SET` column names (for effect reporting).
    pub set_cols: Vec<String>,
    /// Compiled `SET` right-hand sides, in statement order.
    pub sets: Vec<PExpr>,
    /// Compiled `WHERE` (absent = update all).
    pub pred: Option<PExpr>,
    /// Whether `pred` is vectorizable (see [`DeletePlan::pred_vec`]).
    pub pred_vec: bool,
    /// Cache slots to allocate per execution.
    pub cache_slots: usize,
}
