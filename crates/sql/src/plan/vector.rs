//! Vectorized predicate kernels over columnar batches.
//!
//! A *vectorizable* pushed conjunct (see `Compiler::vec_safe_pred`) is
//! evaluated here as whole-column kernels producing a [`Bool3`] — a pair of
//! bitmaps encoding Kleene three-valued logic — instead of once per bound
//! row. The selection a scan uses is the `t` (TRUE) bitmap: exactly the
//! rows `is_true` would keep under row-at-a-time evaluation, since a
//! conjunct admits a row only when it is TRUE (FALSE and UNKNOWN both
//! reject).
//!
//! Two invariants make whole-vector evaluation unobservable:
//!
//! * Every expression reaching these kernels was proven statically
//!   **infallible** by the compiler, so evaluating a conjunct on rows a
//!   row-at-a-time engine would have skipped (short-circuit, earlier
//!   conjunct FALSE) cannot surface an error that the row path would not.
//!   The kernels still *implement* the error paths (they mirror
//!   [`crate::eval::expr`] element by element) as defense in depth.
//! * Kernels visit rows in scan order and selections iterate ascending, so
//!   enumeration order — and therefore result order, effect order, and
//!   execution-graph shape — is byte-identical with the row path.
//!
//! Fast paths exist for `Int` columns (the common rule-condition shape);
//! everything else goes through a per-element loop over materialized
//! [`Value`]s, which is still frame-free and allocation-light.

use std::cmp::Ordering;
use std::ops::Not;

use starling_storage::{Bitmap, Column, ColumnData, TableBatch, Value};

use crate::ast::BinOp;
use crate::error::SqlError;
use crate::eval::expr::{cmp_bool, compare_values, like_values, sql_eq};

use super::PExpr;

/// A vector of three-valued logic outcomes: bit `i` of `t` set means row
/// `i` evaluated TRUE, bit `i` of `f` means FALSE; neither set means
/// UNKNOWN (NULL). `t` and `f` are disjoint by construction.
#[derive(Clone, Debug)]
pub struct Bool3 {
    /// Rows that evaluated TRUE.
    pub t: Bitmap,
    /// Rows that evaluated FALSE.
    pub f: Bitmap,
}

impl Bool3 {
    /// All rows UNKNOWN.
    pub fn unknown(len: usize) -> Self {
        Bool3 {
            t: Bitmap::zeros(len),
            f: Bitmap::zeros(len),
        }
    }

    /// Every row the same known truth value.
    pub fn uniform(len: usize, v: bool) -> Self {
        if v {
            Bool3 {
                t: Bitmap::ones(len),
                f: Bitmap::zeros(len),
            }
        } else {
            Bool3 {
                t: Bitmap::zeros(len),
                f: Bitmap::ones(len),
            }
        }
    }

    /// Sets row `i` from a scalar 3VL value (TRUE / FALSE / UNKNOWN).
    #[inline]
    fn set(&mut self, i: usize, v: &Value) {
        match v {
            Value::Bool(true) => self.t.set(i, true),
            Value::Bool(false) => self.f.set(i, true),
            _ => {}
        }
    }

    /// Kleene AND: TRUE iff both TRUE; FALSE iff either FALSE.
    pub fn and(mut self, other: &Bool3) -> Bool3 {
        self.t.and_assign(&other.t);
        self.f.or_assign(&other.f);
        self
    }

    /// Kleene OR: TRUE iff either TRUE; FALSE iff both FALSE.
    pub fn or(mut self, other: &Bool3) -> Bool3 {
        self.t.or_assign(&other.t);
        self.f.and_assign(&other.f);
        self
    }
}

/// Kleene NOT: swaps TRUE and FALSE, fixes UNKNOWN.
impl std::ops::Not for Bool3 {
    type Output = Bool3;

    fn not(self) -> Bool3 {
        Bool3 {
            t: self.f,
            f: self.t,
        }
    }
}

/// A value operand of a kernel: a whole column or a broadcast constant.
#[derive(Clone, Copy)]
enum VOperand<'b> {
    Col(&'b Column),
    Const(&'b Value),
}

impl VOperand<'_> {
    /// The operand's value at row `i` (constants broadcast).
    fn value(&self, i: usize) -> Value {
        match self {
            VOperand::Col(c) => c.value(i),
            VOperand::Const(v) => (*v).clone(),
        }
    }

    /// The operand as an integer vector, when it is statically `Int`:
    /// either an `Int` column or an `Int` constant. `None` means "use the
    /// generic path" (including NULL constants, handled by the caller).
    fn as_int(&self) -> Option<IntOperand<'_>> {
        match self {
            VOperand::Col(c) => match &c.data {
                ColumnData::Int(data) => Some(IntOperand::Col(data, &c.validity)),
                _ => None,
            },
            VOperand::Const(Value::Int(k)) => Some(IntOperand::Const(*k)),
            _ => None,
        }
    }
}

/// An integer kernel operand.
enum IntOperand<'b> {
    Col(&'b [i64], &'b Bitmap),
    Const(i64),
}

impl IntOperand<'_> {
    /// The operand's validity word `w` (constants are valid everywhere;
    /// the caller masks past-the-end bits).
    #[inline]
    fn valid_word(&self, w: usize) -> u64 {
        match self {
            IntOperand::Col(_, validity) => validity.words()[w],
            IntOperand::Const(_) => !0,
        }
    }

    /// The operand's value at row `i`, which the caller has proven valid.
    #[inline]
    fn at(&self, i: usize) -> i64 {
        match self {
            IntOperand::Col(data, _) => data[i],
            IntOperand::Const(k) => *k,
        }
    }
}

/// Evaluates a vectorizable predicate over a whole batch. Callers must
/// only pass expressions accepted by `Compiler::vec_safe_pred` for this
/// batch's source; anything else is a compiler bug surfaced as an error.
pub(crate) fn eval_pred(e: &PExpr, batch: &TableBatch) -> Result<Bool3, SqlError> {
    let n = batch.len();
    match e {
        PExpr::Const(v) => match v {
            Value::Bool(b) => Ok(Bool3::uniform(n, *b)),
            Value::Null => Ok(Bool3::unknown(n)),
            v => Err(SqlError::eval(format!("expected boolean, got {v}"))),
        },
        PExpr::Slot(s) => {
            let col = batch.column(s.col);
            match &col.data {
                ColumnData::Bool(bits) => {
                    let mut t = bits.clone();
                    t.and_assign(&col.validity);
                    let mut f = bits.not();
                    f.and_assign(&col.validity);
                    Ok(Bool3 { t, f })
                }
                // A non-Bool column can never reach here through the
                // classifier; mirror `eval_bool`'s error for safety.
                _ => {
                    let mut out = Bool3::unknown(n);
                    for i in 0..n {
                        match col.value(i) {
                            v @ (Value::Bool(_) | Value::Null) => out.set(i, &v),
                            v => return Err(SqlError::eval(format!("expected boolean, got {v}"))),
                        }
                    }
                    Ok(out)
                }
            }
        }
        PExpr::Binary { op, lhs, rhs } => match op {
            BinOp::And => Ok(eval_pred(lhs, batch)?.and(&eval_pred(rhs, batch)?)),
            BinOp::Or => Ok(eval_pred(lhs, batch)?.or(&eval_pred(rhs, batch)?)),
            op if op.is_comparison() => {
                let l = operand(lhs, batch).ok_or_else(not_vectorizable)?;
                let r = operand(rhs, batch).ok_or_else(not_vectorizable)?;
                cmp_strict(*op, l, r, n)
            }
            _ => Err(not_vectorizable()),
        },
        PExpr::Not(x) => Ok(eval_pred(x, batch)?.not()),
        PExpr::IsNull { expr, negated } => {
            let known = match operand(expr, batch) {
                // Value operand: NULL-ness comes straight from validity.
                Some(VOperand::Col(c)) => c.validity.clone(),
                Some(VOperand::Const(v)) => {
                    return Ok(Bool3::uniform(n, v.is_null() != *negated));
                }
                // Predicate operand: NULL is exactly UNKNOWN.
                None => {
                    let b = eval_pred(expr, batch)?;
                    let mut known = b.t;
                    known.or_assign(&b.f);
                    known
                }
            };
            // `x IS NULL` is TRUE where x is unknown/invalid, FALSE where
            // known — never UNKNOWN itself.
            Ok(if *negated {
                Bool3 {
                    f: known.not(),
                    t: known,
                }
            } else {
                Bool3 {
                    t: known.not(),
                    f: known,
                }
            })
        }
        PExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = operand(expr, batch).ok_or_else(not_vectorizable)?;
            let lo = operand(low, batch).ok_or_else(not_vectorizable)?;
            let hi = operand(high, batch).ok_or_else(not_vectorizable)?;
            let ge_lo = cmp_soft(v, lo, n, |o| o != Ordering::Less);
            let le_hi = cmp_soft(v, hi, n, |o| o != Ordering::Greater);
            let both = ge_lo.and(&le_hi);
            Ok(if *negated { both.not() } else { both })
        }
        PExpr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = operand(expr, batch).ok_or_else(not_vectorizable)?;
            // Kleene OR over per-item soft equality reproduces `in_result`:
            // any TRUE → TRUE, else any UNKNOWN → UNKNOWN, else FALSE.
            let mut acc = Bool3::uniform(n, false);
            for item in list {
                let cand = operand(item, batch).ok_or_else(not_vectorizable)?;
                acc = acc.or(&eq_soft(needle, cand, n));
            }
            Ok(if *negated { acc.not() } else { acc })
        }
        PExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = operand(expr, batch).ok_or_else(not_vectorizable)?;
            let p = operand(pattern, batch).ok_or_else(not_vectorizable)?;
            let mut out = Bool3::unknown(n);
            for i in 0..n {
                out.set(i, &like_values(v.value(i), p.value(i), *negated)?);
            }
            Ok(out)
        }
        _ => Err(not_vectorizable()),
    }
}

fn not_vectorizable() -> SqlError {
    SqlError::eval("internal: non-vectorizable expression reached a vector kernel")
}

/// A value operand, when the node is one (constants and local slots).
fn operand<'b>(e: &'b PExpr, batch: &'b TableBatch) -> Option<VOperand<'b>> {
    match e {
        PExpr::Const(v) => Some(VOperand::Const(v)),
        PExpr::Slot(s) => Some(VOperand::Col(batch.column(s.col))),
        _ => None,
    }
}

/// Comparison with `compare_values` semantics: NULL operands → UNKNOWN,
/// incomparable non-null operands → error (unreachable for classified
/// expressions, which are statically comparable).
fn cmp_strict(op: BinOp, l: VOperand, r: VOperand, n: usize) -> Result<Bool3, SqlError> {
    if const_null(&l) || const_null(&r) {
        return Ok(Bool3::unknown(n));
    }
    if let (Some(li), Some(ri)) = (l.as_int(), r.as_int()) {
        return Ok(cmp_int(&li, &ri, n, int_pred(op)));
    }
    let mut out = Bool3::unknown(n);
    for i in 0..n {
        out.set(i, &compare_values(op, &l.value(i), &r.value(i))?);
    }
    Ok(out)
}

/// Comparison with `cmp_bool` semantics: NULL *or incomparable* operands →
/// UNKNOWN, never an error (`BETWEEN`'s bound checks).
fn cmp_soft(l: VOperand, r: VOperand, n: usize, pred: impl Fn(Ordering) -> bool) -> Bool3 {
    if const_null(&l) || const_null(&r) {
        return Bool3::unknown(n);
    }
    if let (Some(li), Some(ri)) = (l.as_int(), r.as_int()) {
        return cmp_int(&li, &ri, n, |a, b| pred(a.cmp(&b)));
    }
    let mut out = Bool3::unknown(n);
    for i in 0..n {
        out.set(i, &cmp_bool(&l.value(i), &r.value(i), &pred));
    }
    out
}

/// Equality with `sql_eq` semantics: NULL or incomparable → UNKNOWN.
fn eq_soft(l: VOperand, r: VOperand, n: usize) -> Bool3 {
    if const_null(&l) || const_null(&r) {
        return Bool3::unknown(n);
    }
    if let (Some(li), Some(ri)) = (l.as_int(), r.as_int()) {
        return cmp_int(&li, &ri, n, |a, b| a == b);
    }
    let mut out = Bool3::unknown(n);
    for i in 0..n {
        if let Some(b) = sql_eq(&l.value(i), &r.value(i)) {
            out.set(i, &Value::Bool(b));
        }
    }
    out
}

fn const_null(v: &VOperand) -> bool {
    matches!(v, VOperand::Const(Value::Null))
}

/// The integer fast path: same-type comparisons can neither error nor be
/// incomparable, so strict and soft semantics coincide. Runs a word (64
/// rows) at a time: both operands' validity words intersect into one mask,
/// whose set bits drive the comparisons, and the TRUE/FALSE words are
/// accumulated in registers and stored once — no per-row bitmap writes.
fn cmp_int(l: &IntOperand, r: &IntOperand, n: usize, pred: impl Fn(i64, i64) -> bool) -> Bool3 {
    let mut out = Bool3::unknown(n);
    let t_words = out.t.words_mut();
    let f_words = out.f.words_mut();
    for (w, chunk) in (0..n).step_by(64).enumerate() {
        let in_chunk = (n - chunk).min(64);
        let mut valid = l.valid_word(w) & r.valid_word(w);
        if in_chunk < 64 {
            valid &= (1u64 << in_chunk) - 1;
        }
        let (mut tw, mut fw) = (0u64, 0u64);
        let mut bits = valid;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let i = chunk + b;
            if pred(l.at(i), r.at(i)) {
                tw |= 1 << b;
            } else {
                fw |= 1 << b;
            }
        }
        t_words[w] = tw;
        f_words[w] = fw;
    }
    out
}

fn int_pred(op: BinOp) -> impl Fn(i64, i64) -> bool {
    move |a, b| match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("cmp kernels only receive comparison operators"),
    }
}
