//! Syntactic extraction of the paper's Section 3 rule definitions.
//!
//! Given a rule's AST and the catalog, this module computes:
//!
//! * **Triggered-By(r)** — the operations in `O` that trigger `r` (trivial
//!   from the `when` clause; `updated` with no column list expands to every
//!   column of the rule's table);
//! * **Performs(r)** — the operations `r`'s action may perform (trivial from
//!   the action statements);
//! * **Reads(r)** — every `t.c` referenced in a select or where clause of
//!   `r`'s condition or action, with transition-table references mapped to
//!   the rule's table (footnote 1 of the paper: the language does not
//!   distinguish positive from negative reads);
//! * **Observable(r)** — whether the action performs data retrieval or
//!   rollback (Section 8).
//!
//! The same scope-resolution machinery is reused by [`crate::validate`].

use std::collections::BTreeSet;

use starling_storage::{Catalog, ColRef, Op};

use crate::ast::*;
use crate::error::SqlError;

/// A resolved column: which *schema* table it reads, through which binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedColumn {
    /// The base table whose column is read. For transition-table references
    /// this is the rule's table.
    pub table: String,
    /// The column name.
    pub column: String,
    /// If resolved through a transition table, which one.
    pub transition: Option<TransitionTable>,
}

/// One name binding introduced by a `FROM` item.
#[derive(Clone, Debug)]
struct Binding {
    /// The in-scope name (alias or table name).
    name: String,
    /// The schema table this binding reads from.
    table: String,
    /// Transition table, if any.
    transition: Option<TransitionTable>,
}

/// Lexical scope stack for column resolution.
///
/// Frames are searched innermost-first; within a frame an unqualified column
/// must resolve to exactly one binding (else it is ambiguous). Outer frames
/// provide correlated-subquery bindings.
pub struct Scope<'a> {
    catalog: &'a Catalog,
    /// The rule's table, when resolving inside a rule (enables transition
    /// tables).
    rule_table: Option<&'a str>,
    frames: Vec<Vec<Binding>>,
}

impl<'a> Scope<'a> {
    /// A scope for expressions inside a rule on `rule_table`, or outside any
    /// rule when `rule_table` is `None`.
    pub fn new(catalog: &'a Catalog, rule_table: Option<&'a str>) -> Self {
        Scope {
            catalog,
            rule_table,
            frames: Vec::new(),
        }
    }

    /// Pushes a frame of bindings from `FROM` items.
    pub fn push_from(&mut self, items: &[FromItem]) -> Result<(), SqlError> {
        let mut frame = Vec::with_capacity(items.len());
        for item in items {
            let (table, transition) = match &item.table {
                TableRef::Base(t) => {
                    self.catalog.table(t)?; // must exist
                    (t.clone(), None)
                }
                TableRef::Transition(tt) => match self.rule_table {
                    Some(rt) => (rt.to_owned(), Some(*tt)),
                    None => {
                        return Err(SqlError::validate(format!(
                            "transition table `{}` referenced outside a rule",
                            tt.name()
                        )))
                    }
                },
            };
            let name = item.binding().to_owned();
            if frame.iter().any(|b: &Binding| b.name == name) {
                return Err(SqlError::validate(format!(
                    "duplicate binding `{name}` in from clause"
                )));
            }
            frame.push(Binding {
                name,
                table,
                transition,
            });
        }
        self.frames.push(frame);
        Ok(())
    }

    /// Pushes a frame binding a single base table under its own name (the
    /// implicit scope of `UPDATE`/`DELETE` targets).
    pub fn push_table(&mut self, table: &str) -> Result<(), SqlError> {
        self.catalog.table(table)?;
        self.frames.push(vec![Binding {
            name: table.to_owned(),
            table: table.to_owned(),
            transition: None,
        }]);
        Ok(())
    }

    /// Pops the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// All tables bound by the innermost frame, as `(schema table,
    /// transition)` pairs — used to expand `SELECT *`.
    pub fn innermost_tables(&self) -> Vec<(String, Option<TransitionTable>)> {
        self.frames
            .last()
            .map(|f| f.iter().map(|b| (b.table.clone(), b.transition)).collect())
            .unwrap_or_default()
    }

    /// Resolves a column reference against the scope stack.
    pub fn resolve(&self, col: &ColumnRef) -> Result<ResolvedColumn, SqlError> {
        for frame in self.frames.iter().rev() {
            match &col.qualifier {
                Some(q) => {
                    if let Some(b) = frame.iter().find(|b| &b.name == q) {
                        let schema = self.catalog.table(&b.table)?;
                        if schema.column_index(&col.column).is_none() {
                            return Err(SqlError::validate(format!(
                                "table `{}` (bound as `{q}`) has no column `{}`",
                                b.table, col.column
                            )));
                        }
                        return Ok(ResolvedColumn {
                            table: b.table.clone(),
                            column: col.column.clone(),
                            transition: b.transition,
                        });
                    }
                }
                None => {
                    let mut matches = frame.iter().filter(|b| {
                        self.catalog
                            .table(&b.table)
                            .is_ok_and(|s| s.column_index(&col.column).is_some())
                    });
                    if let Some(first) = matches.next() {
                        if matches.next().is_some() {
                            return Err(SqlError::validate(format!(
                                "ambiguous column `{}`",
                                col.column
                            )));
                        }
                        return Ok(ResolvedColumn {
                            table: first.table.clone(),
                            column: col.column.clone(),
                            transition: first.transition,
                        });
                    }
                }
            }
        }
        Err(SqlError::validate(format!("cannot resolve column `{col}`")))
    }
}

/// The static signature of a rule: the paper's Section 3 per-rule
/// definitions, computed once at rule-set compile time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleSignature {
    /// Rule name.
    pub name: String,
    /// The rule's table.
    pub table: String,
    /// `Triggered-By(r) ⊆ O`.
    pub triggered_by: BTreeSet<Op>,
    /// `Performs(r) ⊆ O`.
    pub performs: BTreeSet<Op>,
    /// `Reads(r) ⊆ C`.
    pub reads: BTreeSet<ColRef>,
    /// `Observable(r)`.
    pub observable: bool,
}

impl RuleSignature {
    /// Computes the signature of a rule against a catalog.
    ///
    /// Fails when names do not resolve; full semantic validation (including
    /// transition-table legality) is in [`crate::validate`].
    pub fn of_rule(rule: &RuleDef, catalog: &Catalog) -> Result<Self, SqlError> {
        let schema = catalog.table(&rule.table)?;

        let mut triggered_by = BTreeSet::new();
        for ev in &rule.events {
            match ev {
                TriggerEvent::Inserted => {
                    triggered_by.insert(Op::Insert(rule.table.clone()));
                }
                TriggerEvent::Deleted => {
                    triggered_by.insert(Op::Delete(rule.table.clone()));
                }
                TriggerEvent::Updated(None) => {
                    for c in schema.column_names() {
                        triggered_by.insert(Op::update(rule.table.clone(), c));
                    }
                }
                TriggerEvent::Updated(Some(cols)) => {
                    for c in cols {
                        if schema.column_index(c).is_none() {
                            return Err(SqlError::validate(format!(
                                "rule `{}`: `updated({c})` names no column of `{}`",
                                rule.name, rule.table
                            )));
                        }
                        triggered_by.insert(Op::update(rule.table.clone(), c.clone()));
                    }
                }
            }
        }

        let mut performs = BTreeSet::new();
        for a in &rule.actions {
            match a {
                Action::Insert(i) => {
                    performs.insert(Op::Insert(i.table.clone()));
                }
                Action::Delete(d) => {
                    performs.insert(Op::Delete(d.table.clone()));
                }
                Action::Update(u) => {
                    for (c, _) in &u.sets {
                        performs.insert(Op::update(u.table.clone(), c.clone()));
                    }
                }
                Action::Select(_) | Action::Rollback => {}
            }
        }

        let mut reads = BTreeSet::new();
        let mut scope = Scope::new(catalog, Some(&rule.table));
        if let Some(cond) = &rule.condition {
            collect_expr(cond, &mut scope, &mut reads)?;
        }
        for a in &rule.actions {
            collect_action(a, &mut scope, &mut reads)?;
        }

        let observable = rule.actions.iter().any(Action::is_observable);

        Ok(RuleSignature {
            name: rule.name.clone(),
            table: rule.table.clone(),
            triggered_by,
            performs,
            reads,
            observable,
        })
    }
}

/// Collects reads from an action statement.
pub(crate) fn collect_action(
    action: &Action,
    scope: &mut Scope<'_>,
    reads: &mut BTreeSet<ColRef>,
) -> Result<(), SqlError> {
    match action {
        Action::Insert(i) => match &i.source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        collect_expr(e, scope, reads)?;
                    }
                }
                Ok(())
            }
            InsertSource::Select(s) => collect_select(s, scope, reads),
        },
        Action::Delete(d) => {
            if let Some(w) = &d.where_clause {
                scope.push_table(&d.table)?;
                let r = collect_expr(w, scope, reads);
                scope.pop();
                r?;
            }
            Ok(())
        }
        Action::Update(u) => {
            scope.push_table(&u.table)?;
            let r = (|| {
                for (_, e) in &u.sets {
                    collect_expr(e, scope, reads)?;
                }
                if let Some(w) = &u.where_clause {
                    collect_expr(w, scope, reads)?;
                }
                Ok(())
            })();
            scope.pop();
            r
        }
        Action::Select(s) => collect_select(s, scope, reads),
        Action::Rollback => Ok(()),
    }
}

fn collect_select(
    s: &SelectStmt,
    scope: &mut Scope<'_>,
    reads: &mut BTreeSet<ColRef>,
) -> Result<(), SqlError> {
    scope.push_from(&s.from)?;
    let r = (|| {
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    // `select *` reads every column of every from-item.
                    for (table, _) in scope.innermost_tables() {
                        let schema = scope.catalog.table(&table)?;
                        for c in schema.column_names() {
                            reads.insert(ColRef::new(table.clone(), c));
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => collect_expr(expr, scope, reads)?,
            }
        }
        if let Some(w) = &s.where_clause {
            collect_expr(w, scope, reads)?;
        }
        for e in &s.group_by {
            collect_expr(e, scope, reads)?;
        }
        if let Some(h) = &s.having {
            collect_expr(h, scope, reads)?;
        }
        for o in &s.order_by {
            collect_expr(&o.expr, scope, reads)?;
        }
        Ok(())
    })();
    scope.pop();
    r
}

fn collect_expr(
    e: &Expr,
    scope: &mut Scope<'_>,
    reads: &mut BTreeSet<ColRef>,
) -> Result<(), SqlError> {
    match e {
        Expr::Literal(_) => Ok(()),
        Expr::Column(c) => {
            let rc = scope.resolve(c)?;
            // Transition references read the rule's table (paper: "for every
            // (trans).c referenced, t.c is in Reads(r) for r's triggering
            // table t").
            reads.insert(ColRef::new(rc.table, rc.column));
            Ok(())
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, scope, reads)?;
            collect_expr(rhs, scope, reads)
        }
        Expr::Neg(x) | Expr::Not(x) => collect_expr(x, scope, reads),
        Expr::IsNull { expr, .. } => collect_expr(expr, scope, reads),
        Expr::InList { expr, list, .. } => {
            collect_expr(expr, scope, reads)?;
            for x in list {
                collect_expr(x, scope, reads)?;
            }
            Ok(())
        }
        Expr::InSelect { expr, select, .. } => {
            collect_expr(expr, scope, reads)?;
            collect_select(select, scope, reads)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_expr(expr, scope, reads)?;
            collect_expr(low, scope, reads)?;
            collect_expr(high, scope, reads)
        }
        Expr::Like { expr, pattern, .. } => {
            collect_expr(expr, scope, reads)?;
            collect_expr(pattern, scope, reads)
        }
        Expr::Exists(s) | Expr::ScalarSubquery(s) => collect_select(s, scope, reads),
        Expr::Aggregate { arg, .. } => match arg {
            Some(x) => collect_expr(x, scope, reads),
            None => Ok(()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableSchema::new(
                "emp",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("salary", ValueType::Int),
                    ColumnDef::new("dno", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add_table(
            TableSchema::new(
                "dept",
                vec![
                    ColumnDef::new("dno", ValueType::Int),
                    ColumnDef::new("budget", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn sig(src: &str) -> RuleSignature {
        let Statement::CreateRule(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        RuleSignature::of_rule(&r, &catalog()).unwrap()
    }

    #[test]
    fn triggered_by_expansion() {
        let s = sig("create rule r on emp when inserted, updated(salary) then rollback end");
        assert!(s.triggered_by.contains(&Op::Insert("emp".into())));
        assert!(s.triggered_by.contains(&Op::update("emp", "salary")));
        assert_eq!(s.triggered_by.len(), 2);

        // `updated` with no columns expands to all columns.
        let s = sig("create rule r on emp when updated then rollback end");
        assert_eq!(s.triggered_by.len(), 3);
    }

    #[test]
    fn performs_extraction() {
        let s = sig("create rule r on emp when inserted then \
             update dept set budget = 0; delete from emp; insert into dept values (1, 2) end");
        assert!(s.performs.contains(&Op::update("dept", "budget")));
        assert!(s.performs.contains(&Op::Delete("emp".into())));
        assert!(s.performs.contains(&Op::Insert("dept".into())));
        assert_eq!(s.performs.len(), 3);
    }

    #[test]
    fn reads_from_condition_and_action() {
        let s = sig("create rule r on emp when inserted \
             if exists (select * from inserted where salary > 10) \
             then delete from dept where budget < 0 end");
        // `select *` from transition table reads all of emp's columns.
        assert!(s.reads.contains(&ColRef::new("emp", "id")));
        assert!(s.reads.contains(&ColRef::new("emp", "salary")));
        assert!(s.reads.contains(&ColRef::new("emp", "dno")));
        assert!(s.reads.contains(&ColRef::new("dept", "budget")));
    }

    #[test]
    fn transition_reads_map_to_rule_table() {
        let s = sig("create rule r on emp when updated(salary) \
             if exists (select * from new_updated as n, old_updated o where n.salary > o.salary) \
             then rollback end");
        assert!(s.reads.contains(&ColRef::new("emp", "salary")));
        assert!(!s.reads.iter().any(|c| c.table == "new_updated"));
    }

    #[test]
    fn correlated_subquery_resolution() {
        let s = sig("create rule r on emp when inserted \
             then delete from dept where not exists \
               (select * from emp where emp.dno = dept.dno) end");
        assert!(s.reads.contains(&ColRef::new("emp", "dno")));
        assert!(s.reads.contains(&ColRef::new("dept", "dno")));
    }

    #[test]
    fn update_set_exprs_read() {
        let s = sig("create rule r on emp when inserted \
             then update emp set salary = salary + 1 where id > 0 end");
        assert!(s.reads.contains(&ColRef::new("emp", "salary")));
        assert!(s.reads.contains(&ColRef::new("emp", "id")));
    }

    #[test]
    fn observability() {
        assert!(sig("create rule r on emp when inserted then rollback end").observable);
        assert!(sig("create rule r on emp when inserted then select id from emp end").observable);
        assert!(!sig("create rule r on emp when inserted then delete from emp end").observable);
    }

    #[test]
    fn unknown_column_in_updated_rejected() {
        let Statement::CreateRule(r) =
            parse_statement("create rule r on emp when updated(nope) then rollback end").unwrap()
        else {
            panic!()
        };
        assert!(RuleSignature::of_rule(&r, &catalog()).is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        let Statement::CreateRule(r) = parse_statement(
            "create rule r on emp when inserted \
             then select dno from emp, dept end",
        )
        .unwrap() else {
            panic!()
        };
        let err = RuleSignature::of_rule(&r, &catalog()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn transition_table_outside_rule_rejected() {
        let cat = catalog();
        let mut scope = Scope::new(&cat, None);
        let err = scope
            .push_from(&[FromItem {
                table: TableRef::Transition(TransitionTable::Inserted),
                alias: None,
            }])
            .unwrap_err();
        assert!(err.to_string().contains("outside a rule"));
    }

    #[test]
    fn unresolvable_column_rejected() {
        let Statement::CreateRule(r) = parse_statement(
            "create rule r on emp when inserted then delete from dept where zzz = 1 end",
        )
        .unwrap() else {
            panic!()
        };
        assert!(RuleSignature::of_rule(&r, &catalog()).is_err());
    }
}
