//! Tokens produced by the lexer.

use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// Position at the start of input.
    pub fn start() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords of the language. Matching is case-insensitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Alter,
    And,
    As,
    Asc,
    Avg,
    Between,
    Bool,
    Boolean,
    By,
    Commute,
    Count,
    Create,
    Declare,
    Delete,
    Deleted,
    Desc,
    Distinct,
    Drop,
    End,
    Exists,
    False,
    Float,
    Follows,
    From,
    Group,
    Having,
    If,
    In,
    Insert,
    Inserted,
    Int,
    Integer,
    Into,
    Is,
    Like,
    Max,
    Min,
    Not,
    Null,
    On,
    Or,
    Order,
    Precedes,
    Real,
    Rollback,
    Rule,
    Select,
    Set,
    String_,
    Sum,
    Table,
    Terminates,
    Text,
    Then,
    True,
    Update,
    Updated,
    Values,
    Varchar,
    When,
    Where,
}

impl Keyword {
    /// Recognizes a keyword from an identifier (already lowercased).
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "alter" => Alter,
            "and" => And,
            "as" => As,
            "asc" => Asc,
            "avg" => Avg,
            "between" => Between,
            "bool" => Bool,
            "boolean" => Boolean,
            "by" => By,
            "commute" => Commute,
            "count" => Count,
            "create" => Create,
            "declare" => Declare,
            "delete" => Delete,
            "deleted" => Deleted,
            "desc" => Desc,
            "distinct" => Distinct,
            "drop" => Drop,
            "end" => End,
            "exists" => Exists,
            "false" => False,
            "float" => Float,
            "follows" => Follows,
            "from" => From,
            "group" => Group,
            "having" => Having,
            "if" => If,
            "in" => In,
            "insert" => Insert,
            "inserted" => Inserted,
            "int" => Int,
            "integer" => Integer,
            "into" => Into,
            "is" => Is,
            "like" => Like,
            "max" => Max,
            "min" => Min,
            "not" => Not,
            "null" => Null,
            "on" => On,
            "or" => Or,
            "order" => Order,
            "precedes" => Precedes,
            "real" => Real,
            "rollback" => Rollback,
            "rule" => Rule,
            "select" => Select,
            "set" => Set,
            "string" => String_,
            "sum" => Sum,
            "table" => Table,
            "terminates" => Terminates,
            "text" => Text,
            "then" => Then,
            "true" => True,
            "update" => Update,
            "updated" => Updated,
            "values" => Values,
            "varchar" => Varchar,
            "when" => When,
            "where" => Where,
            _ => return None,
        })
    }

    /// Canonical (lowercase) spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Alter => "alter",
            And => "and",
            As => "as",
            Asc => "asc",
            Avg => "avg",
            Between => "between",
            Bool => "bool",
            Boolean => "boolean",
            By => "by",
            Commute => "commute",
            Count => "count",
            Create => "create",
            Declare => "declare",
            Delete => "delete",
            Deleted => "deleted",
            Desc => "desc",
            Distinct => "distinct",
            Drop => "drop",
            End => "end",
            Exists => "exists",
            False => "false",
            Float => "float",
            Follows => "follows",
            From => "from",
            Group => "group",
            Having => "having",
            If => "if",
            In => "in",
            Insert => "insert",
            Inserted => "inserted",
            Int => "int",
            Integer => "integer",
            Into => "into",
            Is => "is",
            Like => "like",
            Max => "max",
            Min => "min",
            Not => "not",
            Null => "null",
            On => "on",
            Or => "or",
            Order => "order",
            Precedes => "precedes",
            Real => "real",
            Rollback => "rollback",
            Rule => "rule",
            Select => "select",
            Set => "set",
            String_ => "string",
            Sum => "sum",
            Table => "table",
            Terminates => "terminates",
            Text => "text",
            Then => "then",
            True => "true",
            Update => "update",
            Updated => "updated",
            Values => "values",
            Varchar => "varchar",
            When => "when",
            Where => "where",
        }
    }
}

/// The payload of a token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A keyword.
    Keyword(Keyword),
    /// A non-keyword identifier (lowercased).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (content, without quotes, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`<>`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for s in ["select", "when", "precedes", "rollback", "end"] {
            let k = Keyword::from_ident(s).unwrap();
            assert_eq!(k.as_str(), s);
        }
        assert_eq!(Keyword::from_ident("emp"), None);
    }

    #[test]
    fn pos_display() {
        assert_eq!(Pos { line: 3, col: 14 }.to_string(), "3:14");
    }

    #[test]
    fn token_display() {
        assert_eq!(
            TokenKind::Keyword(Keyword::Select).to_string(),
            "keyword `select`"
        );
        assert_eq!(
            TokenKind::Ident("emp".into()).to_string(),
            "identifier `emp`"
        );
        assert_eq!(TokenKind::Ne.to_string(), "`<>`");
    }
}
