//! Semantic validation of statements against a catalog.
//!
//! Beyond the name resolution performed by [`crate::refs`], validation
//! enforces:
//!
//! * transition tables may only be referenced when the rule's transition
//!   predicate includes the corresponding operation (paper Section 2: "A rule
//!   may refer only to transition tables corresponding to its triggering
//!   operations");
//! * aggregates appear only in select lists, never nested;
//! * `INSERT` arity matches the target column list / schema;
//! * `UPDATE ... SET` columns exist;
//! * `IN (SELECT ...)` and scalar subqueries produce exactly one column.

use starling_storage::Catalog;

use crate::ast::*;
use crate::error::SqlError;
use crate::refs::Scope;

/// Validates a rule definition against a catalog.
pub fn validate_rule(rule: &RuleDef, catalog: &Catalog) -> Result<(), SqlError> {
    if rule.events.is_empty() {
        return Err(SqlError::validate(format!(
            "rule `{}` has no triggering operations",
            rule.name
        )));
    }
    catalog.table(&rule.table)?;

    let allowed = AllowedTransitions::of(rule);
    let mut scope = Scope::new(catalog, Some(&rule.table));
    if let Some(cond) = &rule.condition {
        check_expr(cond, catalog, &mut scope, &allowed, ExprPos::Where)?;
    }
    if rule.actions.is_empty() {
        return Err(SqlError::validate(format!(
            "rule `{}` has no actions",
            rule.name
        )));
    }
    for a in &rule.actions {
        validate_action_inner(a, catalog, &mut scope, &allowed)
            .map_err(|e| prefix(&rule.name, e))?;
    }
    Ok(())
}

/// Validates a standalone DML statement (no rule context: transition tables
/// are rejected).
pub fn validate_dml(action: &Action, catalog: &Catalog) -> Result<(), SqlError> {
    let mut scope = Scope::new(catalog, None);
    validate_action_inner(action, catalog, &mut scope, &AllowedTransitions::none())
}

fn prefix(rule: &str, e: SqlError) -> SqlError {
    match e {
        SqlError::Validate(m) => SqlError::Validate(format!("rule `{rule}`: {m}")),
        other => other,
    }
}

/// Which transition tables the rule's transition predicate permits.
struct AllowedTransitions {
    inserted: bool,
    deleted: bool,
    updated: bool,
}

impl AllowedTransitions {
    fn of(rule: &RuleDef) -> Self {
        let mut a = AllowedTransitions::none();
        for e in &rule.events {
            match e {
                TriggerEvent::Inserted => a.inserted = true,
                TriggerEvent::Deleted => a.deleted = true,
                TriggerEvent::Updated(_) => a.updated = true,
            }
        }
        a
    }

    fn none() -> Self {
        AllowedTransitions {
            inserted: false,
            deleted: false,
            updated: false,
        }
    }

    fn permits(&self, t: TransitionTable) -> bool {
        match t {
            TransitionTable::Inserted => self.inserted,
            TransitionTable::Deleted => self.deleted,
            TransitionTable::NewUpdated | TransitionTable::OldUpdated => self.updated,
        }
    }
}

/// Where an expression occurs; aggregates are legal only in select items.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExprPos {
    SelectItem,
    Where,
    InsideAggregate,
}

fn validate_action_inner(
    action: &Action,
    catalog: &Catalog,
    scope: &mut Scope<'_>,
    allowed: &AllowedTransitions,
) -> Result<(), SqlError> {
    match action {
        Action::Insert(i) => {
            let schema = catalog.table(&i.table)?;
            let arity = match &i.columns {
                Some(cols) => {
                    for c in cols {
                        if schema.column_index(c).is_none() {
                            return Err(SqlError::validate(format!(
                                "insert target `{}` has no column `{c}`",
                                i.table
                            )));
                        }
                    }
                    cols.len()
                }
                None => schema.arity(),
            };
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        if row.len() != arity {
                            return Err(SqlError::validate(format!(
                                "insert into `{}` expects {arity} values, got {}",
                                i.table,
                                row.len()
                            )));
                        }
                        for e in row {
                            check_expr(e, catalog, scope, allowed, ExprPos::Where)?;
                        }
                    }
                }
                InsertSource::Select(s) => {
                    check_select(s, catalog, scope, allowed)?;
                    if let Some(n) = select_width(s, catalog, scope) {
                        if n != arity {
                            return Err(SqlError::validate(format!(
                                "insert into `{}` expects {arity} columns, select yields {n}",
                                i.table
                            )));
                        }
                    }
                }
            }
            Ok(())
        }
        Action::Delete(d) => {
            catalog.table(&d.table)?;
            if let Some(w) = &d.where_clause {
                scope.push_table(&d.table)?;
                let r = check_expr(w, catalog, scope, allowed, ExprPos::Where);
                scope.pop();
                r?;
            }
            Ok(())
        }
        Action::Update(u) => {
            let schema = catalog.table(&u.table)?;
            for (c, _) in &u.sets {
                if schema.column_index(c).is_none() {
                    return Err(SqlError::validate(format!(
                        "update target `{}` has no column `{c}`",
                        u.table
                    )));
                }
            }
            scope.push_table(&u.table)?;
            let r = (|| {
                for (_, e) in &u.sets {
                    check_expr(e, catalog, scope, allowed, ExprPos::Where)?;
                }
                if let Some(w) = &u.where_clause {
                    check_expr(w, catalog, scope, allowed, ExprPos::Where)?;
                }
                Ok(())
            })();
            scope.pop();
            r
        }
        Action::Select(s) => check_select(s, catalog, scope, allowed),
        Action::Rollback => Ok(()),
    }
}

/// Output width of a select, when statically computable.
fn select_width(s: &SelectStmt, catalog: &Catalog, scope: &mut Scope<'_>) -> Option<usize> {
    let mut n = 0;
    // Wildcard width needs the from-item schemas in scope.
    if scope.push_from(&s.from).is_err() {
        return None;
    }
    for item in &s.items {
        match item {
            SelectItem::Wildcard => {
                for (t, _) in scope.innermost_tables() {
                    match catalog.table(&t) {
                        Ok(schema) => n += schema.arity(),
                        Err(_) => {
                            scope.pop();
                            return None;
                        }
                    }
                }
            }
            SelectItem::Expr { .. } => n += 1,
        }
    }
    scope.pop();
    Some(n)
}

fn check_select(
    s: &SelectStmt,
    catalog: &Catalog,
    scope: &mut Scope<'_>,
    allowed: &AllowedTransitions,
) -> Result<(), SqlError> {
    for fi in &s.from {
        if let TableRef::Transition(t) = &fi.table {
            if !allowed.permits(*t) {
                return Err(SqlError::validate(format!(
                    "transition table `{}` does not correspond to any triggering operation",
                    t.name()
                )));
            }
        }
    }
    scope.push_from(&s.from)?;
    let r = (|| {
        if s.items.is_empty() {
            return Err(SqlError::validate("empty select list"));
        }
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {}
                SelectItem::Expr { expr, .. } => {
                    check_expr(expr, catalog, scope, allowed, ExprPos::SelectItem)?
                }
            }
        }
        if let Some(w) = &s.where_clause {
            check_expr(w, catalog, scope, allowed, ExprPos::Where)?;
        }
        for e in &s.group_by {
            check_expr(e, catalog, scope, allowed, ExprPos::Where)?;
        }
        if let Some(h) = &s.having {
            // HAVING may contain aggregates, like a select item.
            check_expr(h, catalog, scope, allowed, ExprPos::SelectItem)?;
        }
        for o in &s.order_by {
            // ORDER BY keys may be aggregates when the query is grouped.
            let pos = if s.group_by.is_empty() {
                ExprPos::Where
            } else {
                ExprPos::SelectItem
            };
            check_expr(&o.expr, catalog, scope, allowed, pos)?;
        }
        Ok(())
    })();
    scope.pop();
    r
}

fn check_subquery_single_column(
    s: &SelectStmt,
    catalog: &Catalog,
    scope: &mut Scope<'_>,
    what: &str,
) -> Result<(), SqlError> {
    if let Some(n) = select_width(s, catalog, scope) {
        if n != 1 {
            return Err(SqlError::validate(format!(
                "{what} must produce exactly one column, got {n}"
            )));
        }
    }
    Ok(())
}

fn check_expr(
    e: &Expr,
    catalog: &Catalog,
    scope: &mut Scope<'_>,
    allowed: &AllowedTransitions,
    pos: ExprPos,
) -> Result<(), SqlError> {
    match e {
        Expr::Literal(_) => Ok(()),
        Expr::Column(c) => scope.resolve(c).map(|_| ()),
        Expr::Binary { lhs, rhs, .. } => {
            // Operands of a binary op are no longer "directly" a select item,
            // but aggregates inside arithmetic in a select item are fine:
            // keep position.
            check_expr(lhs, catalog, scope, allowed, pos)?;
            check_expr(rhs, catalog, scope, allowed, pos)
        }
        Expr::Neg(x) | Expr::Not(x) => check_expr(x, catalog, scope, allowed, pos),
        Expr::IsNull { expr, .. } => check_expr(expr, catalog, scope, allowed, pos),
        Expr::InList { expr, list, .. } => {
            check_expr(expr, catalog, scope, allowed, pos)?;
            for x in list {
                check_expr(x, catalog, scope, allowed, pos)?;
            }
            Ok(())
        }
        Expr::InSelect { expr, select, .. } => {
            check_expr(expr, catalog, scope, allowed, pos)?;
            check_select(select, catalog, scope, allowed)?;
            check_subquery_single_column(select, catalog, scope, "IN subquery")
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            check_expr(expr, catalog, scope, allowed, pos)?;
            check_expr(low, catalog, scope, allowed, pos)?;
            check_expr(high, catalog, scope, allowed, pos)
        }
        Expr::Like { expr, pattern, .. } => {
            check_expr(expr, catalog, scope, allowed, pos)?;
            check_expr(pattern, catalog, scope, allowed, pos)
        }
        Expr::Exists(s) => check_select(s, catalog, scope, allowed),
        Expr::ScalarSubquery(s) => {
            check_select(s, catalog, scope, allowed)?;
            check_subquery_single_column(s, catalog, scope, "scalar subquery")
        }
        Expr::Aggregate { arg, .. } => {
            if pos == ExprPos::InsideAggregate {
                return Err(SqlError::validate("nested aggregate"));
            }
            if pos != ExprPos::SelectItem {
                return Err(SqlError::validate(
                    "aggregate is only allowed in a select list",
                ));
            }
            match arg {
                Some(x) => check_expr(x, catalog, scope, allowed, ExprPos::InsideAggregate),
                None => Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [
            ("emp", vec!["id", "salary", "dno"]),
            ("dept", vec!["dno", "budget"]),
        ] {
            c.add_table(
                TableSchema::new(
                    name,
                    cols.into_iter()
                        .map(|n| ColumnDef::new(n, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        c
    }

    fn check_rule(src: &str) -> Result<(), SqlError> {
        let Statement::CreateRule(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        validate_rule(&r, &catalog())
    }

    fn check_stmt(src: &str) -> Result<(), SqlError> {
        let Statement::Dml(a) = parse_statement(src).unwrap() else {
            panic!()
        };
        validate_dml(&a, &catalog())
    }

    #[test]
    fn good_rule_passes() {
        check_rule(
            "create rule r on emp when inserted, updated(salary) \
             if exists (select * from inserted) \
             then update dept set budget = budget - 1 where dno in \
               (select dno from new_updated) end",
        )
        .unwrap();
    }

    #[test]
    fn transition_table_must_match_events() {
        let e = check_rule(
            "create rule r on emp when inserted \
             then delete from emp where id in (select id from deleted) end",
        )
        .unwrap_err();
        assert!(e.to_string().contains("does not correspond"), "{e}");

        let e = check_rule(
            "create rule r on emp when deleted \
             then delete from emp where id in (select id from new_updated) end",
        )
        .unwrap_err();
        assert!(e.to_string().contains("does not correspond"), "{e}");
    }

    #[test]
    fn insert_arity_checked() {
        assert!(check_stmt("insert into dept values (1, 2)").is_ok());
        let e = check_stmt("insert into dept values (1)").unwrap_err();
        assert!(e.to_string().contains("expects 2 values"), "{e}");
        let e = check_stmt("insert into dept (dno) values (1, 2)").unwrap_err();
        assert!(e.to_string().contains("expects 1 values"), "{e}");
        let e = check_stmt("insert into dept (zz) values (1)").unwrap_err();
        assert!(e.to_string().contains("no column `zz`"), "{e}");
    }

    #[test]
    fn insert_select_width_checked() {
        assert!(check_stmt("insert into dept select dno, budget from dept").is_ok());
        assert!(check_stmt("insert into dept select * from dept").is_ok());
        let e = check_stmt("insert into dept select dno from dept").unwrap_err();
        assert!(e.to_string().contains("select yields 1"), "{e}");
        let e = check_stmt("insert into dept select * from emp").unwrap_err();
        assert!(e.to_string().contains("select yields 3"), "{e}");
    }

    #[test]
    fn update_set_column_checked() {
        assert!(check_stmt("update emp set salary = 1").is_ok());
        let e = check_stmt("update emp set wage = 1").unwrap_err();
        assert!(e.to_string().contains("no column `wage`"), "{e}");
    }

    #[test]
    fn aggregates_only_in_select_list() {
        assert!(check_stmt("select count(*) from emp").is_ok());
        assert!(check_stmt("select sum(salary) + 1 from emp").is_ok());
        let e = check_stmt("select id from emp where sum(salary) > 1").unwrap_err();
        assert!(
            e.to_string().contains("only allowed in a select list"),
            "{e}"
        );
        let e = check_stmt("select sum(sum(salary)) from emp").unwrap_err();
        assert!(e.to_string().contains("nested aggregate"), "{e}");
    }

    #[test]
    fn subqueries_single_column() {
        assert!(check_stmt("select id from emp where dno in (select dno from dept)").is_ok());
        let e = check_stmt("select id from emp where dno in (select * from dept)").unwrap_err();
        assert!(e.to_string().contains("exactly one column"), "{e}");
        let e = check_stmt("select id from emp where id = (select * from dept)").unwrap_err();
        assert!(e.to_string().contains("exactly one column"), "{e}");
    }

    #[test]
    fn rule_must_have_events_and_actions() {
        // Parser requires >= 1 of each, so construct directly.
        let rule = RuleDef {
            name: "r".into(),
            table: "emp".into(),
            events: vec![],
            condition: None,
            actions: vec![Action::Rollback],
            precedes: vec![],
            follows: vec![],
        };
        assert!(validate_rule(&rule, &catalog()).is_err());
    }

    #[test]
    fn dml_rejects_transition_tables() {
        let e = check_stmt("select * from inserted").unwrap_err();
        assert!(e.to_string().contains("transition table"), "{e}");
    }

    #[test]
    fn unknown_table_rejected() {
        assert!(check_stmt("delete from nowhere").is_err());
        assert!(check_rule("create rule r on nowhere when inserted then rollback end").is_err());
    }

    #[test]
    fn empty_select_list_would_be_rejected() {
        // Parser cannot produce it; construct directly.
        let s = SelectStmt {
            distinct: false,
            items: vec![],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        let cat = catalog();
        let mut scope = Scope::new(&cat, None);
        assert!(check_select(&s, &cat, &mut scope, &AllowedTransitions::none()).is_err());
    }
}
