//! A columnar batch view of one table version.
//!
//! A [`TableBatch`] packs every row of a [`crate::Table`] (in scan order,
//! i.e. ascending [`TupleId`]) into per-column vectors. It is built lazily,
//! once per *table version*: the CoW storage layer caches the batch inside
//! the shared `TableCore`, so every snapshot that shares the same underlying
//! rows also shares the batch, and any mutation (which unshares the core)
//! drops it. Rule-condition evaluation over an unchanged table — the hot
//! loop of exec-graph exploration — therefore pays the flattening cost once
//! and then runs vector kernels against the cached batch.
//!
//! The batch also lazily caches one hash index per column
//! (`Value → positions`), used by the plan layer's hash joins. Positions in
//! a hit list are ascending, so probing an index yields matches in scan
//! order — the same order a nested-loop scan would produce, which keeps
//! execution-graph output byte-identical with the row path. NULL keys are
//! not indexed (SQL equality with NULL never matches).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::column::Column;
use crate::schema::TableSchema;
use crate::tuple::{Row, TupleId};
use crate::value::Value;

/// Columnar snapshot of one table version: tuple ids plus one [`Column`]
/// per schema column, all in scan order.
#[derive(Debug)]
pub struct TableBatch {
    ids: Vec<TupleId>,
    columns: Vec<Column>,
    len: usize,
    /// Lazily built per-column value indexes for hash joins. `OnceLock` so
    /// concurrent explorers (scoped threads in `explore_parallel`) can race
    /// to build them safely.
    indexes: Vec<OnceLock<HashMap<Value, Vec<u32>>>>,
}

impl TableBatch {
    /// Flattens `rows` (which must iterate in scan order) into a batch.
    pub fn build<'r>(
        schema: &TableSchema,
        rows: impl Iterator<Item = (&'r TupleId, &'r Row)> + Clone,
        len: usize,
    ) -> Self {
        let ids: Vec<TupleId> = rows.clone().map(|(id, _)| *id).collect();
        debug_assert_eq!(ids.len(), len);
        let columns = schema
            .columns
            .iter()
            .enumerate()
            .map(|(ci, cd)| Column::from_values(cd.ty, rows.clone().map(move |(_, r)| &r[ci]), len))
            .collect::<Vec<_>>();
        let indexes = (0..columns.len()).map(|_| OnceLock::new()).collect();
        TableBatch {
            ids,
            columns,
            len,
            indexes,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tuple ids in scan order.
    pub fn ids(&self) -> &[TupleId] {
        &self.ids
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `col`.
    #[inline]
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// The exact [`Value`] stored at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materializes row `pos` back into a [`Row`] identical to the one the
    /// row store holds.
    pub fn row(&self, pos: usize) -> Row {
        self.columns.iter().map(|c| c.value(pos)).collect()
    }

    /// The hash index for `col`: non-NULL value → ascending positions.
    /// Built on first use and cached for the lifetime of this table
    /// version. Keys use structural equality, which coincides with SQL
    /// equality only when probe values share the column's non-float
    /// declared type — the same restriction the plan layer's `JoinKey`
    /// already enforces.
    pub fn hash_index(&self, col: usize) -> &HashMap<Value, Vec<u32>> {
        self.indexes[col].get_or_init(|| {
            let c = &self.columns[col];
            let mut map: HashMap<Value, Vec<u32>> = HashMap::new();
            for pos in 0..self.len {
                if !c.is_null(pos) {
                    map.entry(c.value(pos)).or_default().push(pos as u32);
                }
            }
            map
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::nullable("a", ValueType::Int),
                ColumnDef::nullable("s", ValueType::Str),
            ],
        )
        .unwrap()
    }

    fn rows() -> Vec<(TupleId, Row)> {
        vec![
            (TupleId(1), vec![Value::Int(10), Value::Str("x".into())]),
            (TupleId(4), vec![Value::Null, Value::Str("y".into())]),
            (TupleId(9), vec![Value::Int(10), Value::Null]),
        ]
    }

    #[test]
    fn batch_round_trips_rows_in_scan_order() {
        let schema = schema();
        let rows = rows();
        let b = TableBatch::build(&schema, rows.iter().map(|(id, r)| (id, r)), rows.len());
        assert_eq!(b.len(), 3);
        assert_eq!(b.ids(), &[TupleId(1), TupleId(4), TupleId(9)]);
        for (pos, (_, r)) in rows.iter().enumerate() {
            assert_eq!(&b.row(pos), r);
        }
    }

    #[test]
    fn index_skips_nulls_and_orders_hits() {
        let schema = schema();
        let rows = rows();
        let b = TableBatch::build(&schema, rows.iter().map(|(id, r)| (id, r)), rows.len());
        let idx = b.hash_index(0);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(&Value::Int(10)), Some(&vec![0u32, 2]));
        assert!(!idx.contains_key(&Value::Null));
        // Second call returns the cached map.
        assert!(std::ptr::eq(idx, b.hash_index(0)));
    }
}
