//! Typed column vectors and validity/selection bitmaps.
//!
//! The row store ([`crate::Table`]) keeps tuples as `BTreeMap<TupleId, Row>`
//! — the right shape for identity-preserving mutation, and the wrong shape
//! for the compile-once/evaluate-many workload of rule conditions, where the
//! same predicate scans the same (unchanged) table thousands of times. This
//! module provides the batch-oriented view: values of one column packed into
//! a typed vector ([`ColumnData`]) with NULLs tracked in a validity
//! [`Bitmap`], so predicate kernels run as tight per-column loops and
//! filters mark surviving rows in a selection bitmap instead of
//! materializing them.
//!
//! Representation notes:
//!
//! * `Int`, `Str`, and `Bool` columns store their natural vectors. A `Bool`
//!   column is itself a bitmap (data bits) plus the validity bitmap.
//! * A `Float` column may legally hold `Value::Int` too (the one implicit
//!   widening the SQL subset performs) **and the stored value keeps its
//!   variant** — `Int(1)` and `Float(1.0)` are structurally distinct (they
//!   digest and sort differently). A typed `Vec<f64>` would erase that
//!   distinction, so float columns use the [`ColumnData::Mixed`] fallback,
//!   which round-trips values exactly.
//! * Bits beyond `len` in every bitmap are zero — an invariant the property
//!   tests (`tests/columnar_props.rs`) check after every operation, since
//!   word-wise combinators rely on it.

use crate::value::{Value, ValueType};

/// A fixed-length bitmap. Used for column validity (bit set = non-NULL) and
/// for row selections (bit set = row survives the filter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one bitmap of `len` bits (tail bits beyond `len` stay zero).
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Zeroes the bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// In-place AND with another bitmap of the same length.
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place OR with another bitmap of the same length.
    pub fn or_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The complement (tail bits kept zero).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Iterates the indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Direct word access for word-at-a-time kernels. Bits beyond `len`
    /// are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word access for word-at-a-time kernels. The caller must keep
    /// bits beyond `len` zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// Iterator over the set-bit indices of a [`Bitmap`], ascending.
pub struct Ones<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

/// The typed values of one column (NULL slots hold an arbitrary placeholder;
/// the validity bitmap is authoritative).
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// Integer column: packed `i64`s.
    Int(Vec<i64>),
    /// Boolean column: data bits (valid slots only are meaningful).
    Bool(Bitmap),
    /// String column.
    Str(Vec<String>),
    /// Exact-value fallback used for `Float` columns (which may store both
    /// `Int` and `Float` variants) — round-trips values structurally.
    Mixed(Vec<Value>),
}

/// One column of a batch: typed data plus a validity bitmap (bit set =
/// non-NULL).
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// The packed values.
    pub data: ColumnData,
    /// Validity: bit `i` set iff row `i` is non-NULL in this column.
    pub validity: Bitmap,
}

impl Column {
    /// Builds a column of declared type `ty` from row values in scan order.
    pub fn from_values<'v>(
        ty: ValueType,
        values: impl Iterator<Item = &'v Value>,
        len: usize,
    ) -> Self {
        let mut validity = Bitmap::zeros(len);
        let data = match ty {
            ValueType::Int => {
                let mut out = vec![0i64; len];
                for (i, v) in values.enumerate() {
                    if let Value::Int(x) = v {
                        out[i] = *x;
                        validity.set(i, true);
                    }
                }
                ColumnData::Int(out)
            }
            ValueType::Bool => {
                let mut bits = Bitmap::zeros(len);
                for (i, v) in values.enumerate() {
                    if let Value::Bool(b) = v {
                        bits.set(i, *b);
                        validity.set(i, true);
                    }
                }
                ColumnData::Bool(bits)
            }
            ValueType::Str => {
                let mut out = vec![String::new(); len];
                for (i, v) in values.enumerate() {
                    if let Value::Str(s) = v {
                        out[i] = s.clone();
                        validity.set(i, true);
                    }
                }
                ColumnData::Str(out)
            }
            ValueType::Float => {
                let mut out = vec![Value::Null; len];
                for (i, v) in values.enumerate() {
                    if !v.is_null() {
                        out[i] = v.clone();
                        validity.set(i, true);
                    }
                }
                ColumnData::Mixed(out)
            }
        };
        Column { data, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        !self.validity.get(i)
    }

    /// Materializes row `i` back into a [`Value`] — the exact value the row
    /// store holds (structural round-trip, including the `Int`-in-`Float`
    /// case).
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Bool(bits) => Value::Bool(bits.get(i)),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::zeros(70);
        assert_eq!(b.len(), 70);
        assert!(!b.any());
        b.set(0, true);
        b.set(69, true);
        assert!(b.get(0) && b.get(69) && !b.get(33));
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 69]);
        b.set(0, false);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn bitmap_ones_masks_tail() {
        let b = Bitmap::ones(65);
        assert_eq!(b.count_ones(), 65);
        // The complement of all-ones is empty — tail bits must stay zero.
        assert_eq!(b.not().count_ones(), 0);
        assert_eq!(Bitmap::zeros(65).not().count_ones(), 65);
    }

    #[test]
    fn bitmap_combinators() {
        let mut a = Bitmap::zeros(10);
        let mut b = Bitmap::zeros(10);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![2]);
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn column_round_trips_values() {
        let vals = [Value::Int(3), Value::Null, Value::Int(-7)];
        let c = Column::from_values(ValueType::Int, vals.iter(), vals.len());
        assert_eq!(c.len(), 3);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
        assert!(c.is_null(1) && !c.is_null(0));
    }

    #[test]
    fn float_column_keeps_int_variants() {
        // A Float column accepts Int values; the batch view must preserve
        // the variant (Int(1) and Float(1.0) are structurally distinct).
        let vals = [Value::Float(1.5), Value::Int(2), Value::Null];
        let c = Column::from_values(ValueType::Float, vals.iter(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn bool_column_bits() {
        let vals = [Value::Bool(true), Value::Bool(false), Value::Null];
        let c = Column::from_values(ValueType::Bool, vals.iter(), vals.len());
        assert_eq!(c.value(0), Value::Bool(true));
        assert_eq!(c.value(1), Value::Bool(false));
        assert_eq!(c.value(2), Value::Null);
    }
}
