//! The database: catalog plus table contents plus tuple-id allocation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::digest::{CanonicalDigest, Fnv64};
use crate::error::StorageError;
use crate::fault::{FaultOpKind, FaultPlan, FaultState};
use crate::schema::{Catalog, TableSchema};
use crate::table::Table;
use crate::tuple::{Row, TupleId};
use crate::value::Value;

/// A complete database state: the `D` component of an execution-graph state
/// `S = (D, TR)` (paper Section 4).
///
/// `Database` is `Clone`; the execution-graph explorer snapshots states
/// freely, and `ROLLBACK` restores the assertion-point snapshot.
///
/// An optional [`FaultPlan`] can be installed for robustness testing; its
/// state is shared across clones (a snapshot and the live database count
/// operations against the same plan) and is excluded from equality and
/// digests.
///
/// # Copy-on-write snapshots
///
/// Both the catalog and the table map live behind `Arc`s, and each
/// [`Table`] shares its row storage the same way, so `clone()` is a few
/// refcount bumps regardless of database size. The first mutation through
/// a shared handle re-shares: it clones the table *map* (cheap — each entry
/// is itself a shared handle) and then only the touched table's rows.
/// Observable behavior is identical to a deep clone (property-tested).
#[derive(Clone, Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    tables: Arc<BTreeMap<String, Table>>,
    next_tuple_id: u64,
    fault: Option<Arc<FaultState>>,
}

impl Eq for Database {}

impl PartialEq for Database {
    /// Equality over contents only: an installed fault plan is test
    /// scaffolding, not database state.
    fn eq(&self, other: &Self) -> bool {
        self.catalog == other.catalog
            && self.tables == other.tables
            && self.next_tuple_id == other.next_tuple_id
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            catalog: Arc::new(Catalog::new()),
            tables: Arc::new(BTreeMap::new()),
            next_tuple_id: 1,
            fault: None,
        }
    }

    /// Installs a fault plan with fresh counters. All subsequent clones
    /// (snapshots) share the plan's state; see [`crate::fault`].
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan));
    }

    /// Removes any installed fault plan from this handle (clones that
    /// already share the state keep it).
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// Re-attaches an existing (possibly shared) fault state to this
    /// handle — used when a handle is replaced wholesale (e.g. restoring a
    /// durable base) but must keep observing the same plan and counters.
    pub fn set_fault_state(&mut self, state: Option<Arc<FaultState>>) {
        self.fault = state;
    }

    /// The installed fault injector state, if any.
    pub fn fault_state(&self) -> Option<&Arc<FaultState>> {
        self.fault.as_ref()
    }

    /// Consults the fault plan before a mutating operation.
    fn check_fault(&self, op: FaultOpKind, table: &str) -> Result<(), StorageError> {
        if let Some(state) = &self.fault {
            if let Some(op_index) = state.observe(op, table) {
                return Err(StorageError::Injected {
                    op_index,
                    op,
                    table: table.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        Arc::make_mut(&mut self.catalog).add_table(schema.clone())?;
        Arc::make_mut(&mut self.tables).insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        // Unshares only the *map of handles*; each untouched table keeps
        // sharing its row storage with every snapshot.
        Arc::make_mut(&mut self.tables)
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// All tables, ordered by name.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Whether this handle still shares its table map with `other`
    /// (diagnostic; used by the CoW tests).
    pub fn shares_tables_with(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.tables, &other.tables)
    }

    /// The id the allocator will hand out next. Part of full-state equality
    /// (`PartialEq`), so the durability layer persists and restores it.
    pub fn next_tuple_id(&self) -> u64 {
        self.next_tuple_id
    }

    /// Forces the allocator position. Recovery only: replaying a logged
    /// commit delta must reproduce the exact allocator state, not just the
    /// lower bound [`Database::insert_with_id`] maintains.
    pub fn set_next_tuple_id(&mut self, next: u64) {
        self.next_tuple_id = next;
    }

    /// Allocates a fresh tuple id. Ids are global across tables and never
    /// reused.
    pub fn allocate_tuple_id(&mut self) -> TupleId {
        let id = TupleId(self.next_tuple_id);
        self.next_tuple_id += 1;
        id
    }

    /// Inserts a row, allocating a fresh tuple id. Returns the id.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<TupleId, StorageError> {
        self.check_fault(FaultOpKind::Insert, table)?;
        // Check before allocating so a failed insert does not burn an id
        // (keeps digests of equivalent states identical).
        self.table(table)?.schema().check_row(&row)?;
        let id = self.allocate_tuple_id();
        self.table_mut(table)?.insert(id, row)?;
        Ok(id)
    }

    /// Inserts a row under a specific id (used when replaying logged
    /// operations onto a snapshot).
    pub fn insert_with_id(
        &mut self,
        table: &str,
        id: TupleId,
        row: Row,
    ) -> Result<(), StorageError> {
        self.check_fault(FaultOpKind::Insert, table)?;
        self.table_mut(table)?.insert(id, row)?;
        self.next_tuple_id = self.next_tuple_id.max(id.0 + 1);
        Ok(())
    }

    /// Deletes a tuple, returning its final values.
    pub fn delete(&mut self, table: &str, id: TupleId) -> Result<Row, StorageError> {
        self.check_fault(FaultOpKind::Delete, table)?;
        self.table_mut(table)?.delete(id)
    }

    /// Replaces a tuple's values, returning the old values.
    pub fn update(&mut self, table: &str, id: TupleId, row: Row) -> Result<Row, StorageError> {
        self.check_fault(FaultOpKind::Update, table)?;
        self.table_mut(table)?.update(id, row)
    }

    /// Updates a single column, returning the previous full row.
    pub fn update_column(
        &mut self,
        table: &str,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<Row, StorageError> {
        self.check_fault(FaultOpKind::Update, table)?;
        self.table_mut(table)?.update_column(id, column, value)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Canonical digest of the entire database state.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.digest_into(&mut h);
        h.finish()
    }

    /// Canonical digest of a subset of tables (used for partial-confluence
    /// checks: "the tables in T' are identical in D1 and D2", Section 7).
    ///
    /// Unknown names are ignored; the subset is digested in sorted order so
    /// the caller's ordering does not matter.
    pub fn digest_of_tables(&self, names: &[&str]) -> u64 {
        let mut sorted: Vec<&str> = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut h = Fnv64::new();
        for name in sorted {
            if let Some(t) = self.tables.get(name) {
                t.digest_into(&mut h);
            }
        }
        h.finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl CanonicalDigest for Database {
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_usize(self.tables.len());
        for t in self.tables.values() {
            t.digest_into(h);
        }
        // next_tuple_id intentionally excluded: two states with identical
        // contents are the same state even if they allocated ids differently.
    }
}

impl fmt::Display for Database {
    /// Debug-friendly dump: one line per tuple, tables in name order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.tables.values() {
            writeln!(f, "{} ({} rows)", t.name(), t.len())?;
            for (id, row) in t.iter() {
                let vals: Vec<String> = row.iter().map(Value::to_string).collect();
                writeln!(f, "  {id}: [{}]", vals.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "emp",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("salary", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn insert_allocates_monotonic_ids() {
        let mut d = db();
        let a = d
            .insert("emp", vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        let b = d
            .insert("emp", vec![Value::Int(2), Value::Int(200)])
            .unwrap();
        assert!(b > a);
        assert_eq!(d.table("emp").unwrap().len(), 2);
    }

    #[test]
    fn failed_insert_does_not_burn_id() {
        let mut d = db();
        let before = d.clone();
        assert!(d.insert("emp", vec![Value::Int(1)]).is_err());
        assert_eq!(d.state_digest(), before.state_digest());
        // Next successful insert in both copies yields identical states.
        let mut d2 = before;
        d.insert("emp", vec![Value::Int(1), Value::Int(1)]).unwrap();
        d2.insert("emp", vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        assert_eq!(d.state_digest(), d2.state_digest());
    }

    #[test]
    fn snapshot_and_restore() {
        let mut d = db();
        d.insert("emp", vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        let snap = d.clone();
        d.insert("emp", vec![Value::Int(2), Value::Int(200)])
            .unwrap();
        assert_ne!(d.state_digest(), snap.state_digest());
        let d = snap; // rollback
        assert_eq!(d.table("emp").unwrap().len(), 1);
    }

    #[test]
    fn update_and_delete_through_db() {
        let mut d = db();
        let id = d
            .insert("emp", vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        d.update_column("emp", id, "salary", Value::Int(150))
            .unwrap();
        assert_eq!(d.table("emp").unwrap().get(id).unwrap()[1], Value::Int(150));
        let old = d.delete("emp", id).unwrap();
        assert_eq!(old[1], Value::Int(150));
    }

    #[test]
    fn digest_ignores_id_counter() {
        let mut d1 = db();
        let mut d2 = db();
        // Burn an id in d2 via insert+delete of the same content later
        // replayed with explicit ids — contents equal, digests equal.
        let id = d2
            .insert("emp", vec![Value::Int(9), Value::Int(9)])
            .unwrap();
        d2.delete("emp", id).unwrap();
        assert_eq!(d1.state_digest(), d2.state_digest());
        d1.insert_with_id("emp", TupleId(50), vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        d2.insert_with_id("emp", TupleId(50), vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        assert_eq!(d1.state_digest(), d2.state_digest());
    }

    #[test]
    fn insert_with_id_advances_allocator() {
        let mut d = db();
        d.insert_with_id("emp", TupleId(10), vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        let next = d.insert("emp", vec![Value::Int(2), Value::Int(2)]).unwrap();
        assert!(next.0 > 10);
    }

    #[test]
    fn unknown_table_errors() {
        let mut d = db();
        assert!(matches!(
            d.insert("nope", vec![]),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(matches!(
            d.table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn digest_of_tables_isolates_subsets() {
        let mut d1 = db();
        d1.create_table(
            TableSchema::new("log", vec![ColumnDef::new("m", ValueType::Int)]).unwrap(),
        )
        .unwrap();
        let mut d2 = d1.clone();
        d1.insert("log", vec![Value::Int(1)]).unwrap();
        // Full digests differ; the `emp`-only digests agree.
        assert_ne!(d1.state_digest(), d2.state_digest());
        assert_eq!(d1.digest_of_tables(&["emp"]), d2.digest_of_tables(&["emp"]));
        assert_ne!(d1.digest_of_tables(&["log"]), d2.digest_of_tables(&["log"]));
        // Order and duplicates in the name list are irrelevant.
        assert_eq!(
            d1.digest_of_tables(&["log", "emp"]),
            d1.digest_of_tables(&["emp", "log", "emp"])
        );
        // Unknown names are ignored.
        assert_eq!(
            d1.digest_of_tables(&["emp", "nope"]),
            d1.digest_of_tables(&["emp"])
        );
        // And a divergent emp shows through the subset digest.
        d2.insert("emp", vec![Value::Int(9), Value::Int(9)])
            .unwrap();
        assert_ne!(d1.digest_of_tables(&["emp"]), d2.digest_of_tables(&["emp"]));
    }

    #[test]
    fn fault_plan_kills_nth_matching_op() {
        use crate::fault::{FaultOpKind, FaultPlan, FaultSpec};
        let mut d = db();
        d.install_fault_plan(FaultPlan::single(
            FaultSpec::nth(1)
                .on_table("emp")
                .on_kind(FaultOpKind::Insert),
        ));
        d.insert("emp", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let err = d
            .insert("emp", vec![Value::Int(2), Value::Int(2)])
            .unwrap_err();
        assert!(err.is_injected());
        assert!(matches!(
            err,
            StorageError::Injected {
                op_index: 1,
                op: FaultOpKind::Insert,
                ..
            }
        ));
        // Injected failure leaves contents untouched and the fault is
        // one-shot: the retry succeeds.
        assert_eq!(d.table("emp").unwrap().len(), 1);
        d.insert("emp", vec![Value::Int(2), Value::Int(2)]).unwrap();
    }

    #[test]
    fn fault_state_is_shared_with_snapshots() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut d = db();
        d.install_fault_plan(FaultPlan::single(FaultSpec::nth(1)));
        let mut snap = d.clone();
        // Op #0 on the live db passes; op #1 — issued on the *snapshot* —
        // trips the shared counter.
        d.insert("emp", vec![Value::Int(1), Value::Int(1)]).unwrap();
        assert!(snap
            .insert("emp", vec![Value::Int(1), Value::Int(1)])
            .unwrap_err()
            .is_injected());
        assert_eq!(d.fault_state().unwrap().ops_observed(), 2);
    }

    #[test]
    fn fault_plan_invisible_to_equality_and_digest() {
        use crate::fault::{FaultPlan, FaultSpec};
        let d1 = db();
        let mut d2 = db();
        d2.install_fault_plan(FaultPlan::single(FaultSpec::nth(99)));
        assert_eq!(d1, d2);
        assert_eq!(d1.state_digest(), d2.state_digest());
        d2.clear_fault_plan();
        assert!(d2.fault_state().is_none());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut d = db();
        d.create_table(TableSchema::new("log", vec![ColumnDef::new("m", ValueType::Int)]).unwrap())
            .unwrap();
        d.insert("emp", vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        let snap = d.clone();
        assert!(d.shares_tables_with(&snap));
        // Mutating `log` unshares the map of handles but leaves `emp`'s row
        // storage shared between the live database and the snapshot.
        d.insert("log", vec![Value::Int(7)]).unwrap();
        assert!(!d.shares_tables_with(&snap));
        assert!(d
            .table("emp")
            .unwrap()
            .shares_storage_with(snap.table("emp").unwrap()));
        assert!(!d
            .table("log")
            .unwrap()
            .shares_storage_with(snap.table("log").unwrap()));
        // The snapshot is untouched by the divergent mutation.
        assert_eq!(snap.table("log").unwrap().len(), 0);
        assert_eq!(d.table("log").unwrap().len(), 1);
    }

    #[test]
    fn display_dump() {
        let mut d = db();
        d.insert("emp", vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        let s = d.to_string();
        assert!(s.contains("emp (1 rows)"));
        assert!(s.contains("#1: [1, 100]"));
    }
}
