//! Deterministic canonical digests.
//!
//! The execution-graph explorer (paper Section 4) must recognize when two
//! interleavings reach the *same* state in order to deduplicate nodes and
//! detect cycles (nontermination). `std`'s `DefaultHasher` is not guaranteed
//! stable across releases, so we ship a small FNV-1a implementation and a
//! [`CanonicalDigest`] trait that serializes structures in a canonical order
//! (all storage containers are `BTreeMap`s, so iteration order is already
//! deterministic).

/// 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` for portability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed string (prefix prevents ambiguity between
    /// e.g. `["ab","c"]` and `["a","bc"]`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Types that can contribute to a canonical digest.
pub trait CanonicalDigest {
    /// Feeds a canonical serialization of `self` into the hasher.
    fn digest_into(&self, h: &mut Fnv64);

    /// Convenience: digest of `self` alone.
    fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.digest_into(&mut h);
        h.finish()
    }
}

impl CanonicalDigest for crate::value::Value {
    fn digest_into(&self, h: &mut Fnv64) {
        use crate::value::Value;
        match self {
            Value::Null => h.write(&[0]),
            Value::Bool(b) => {
                h.write(&[1]);
                h.write(&[u8::from(*b)]);
            }
            Value::Int(i) => {
                h.write(&[2]);
                h.write_u64(*i as u64);
            }
            Value::Float(x) => {
                h.write(&[3]);
                h.write_u64(x.to_bits());
            }
            Value::Str(s) => {
                h.write(&[4]);
                h.write_str(s);
            }
        }
    }
}

impl<T: CanonicalDigest> CanonicalDigest for [T] {
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_usize(self.len());
        for v in self {
            v.digest_into(h);
        }
    }
}

impl<T: CanonicalDigest> CanonicalDigest for Vec<T> {
    fn digest_into(&self, h: &mut Fnv64) {
        self.as_slice().digest_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn deterministic() {
        let v = vec![Value::Int(1), Value::from("x"), Value::Null];
        assert_eq!(v.digest(), v.digest());
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(Value::Int(1).digest(), Value::Int(2).digest());
        assert_ne!(Value::Int(1).digest(), Value::Float(1.0).digest());
        assert_ne!(Value::Null.digest(), Value::Bool(false).digest());
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let a = vec![Value::from("ab"), Value::from("c")];
        let b = vec![Value::from("a"), Value::from("bc")];
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
