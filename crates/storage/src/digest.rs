//! Deterministic canonical digests.
//!
//! The execution-graph explorer (paper Section 4) must recognize when two
//! interleavings reach the *same* state in order to deduplicate nodes and
//! detect cycles (nontermination). `std`'s `DefaultHasher` is not guaranteed
//! stable across releases, so we ship a small FNV-1a implementation and a
//! [`CanonicalDigest`] trait that serializes structures in a canonical order
//! (all storage containers are `BTreeMap`s, so iteration order is already
//! deterministic).

/// 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher.
    #[inline]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    ///
    /// Hot under `digest_into`: the loop keeps the running state in a local
    /// so the optimizer holds it in a register instead of spilling through
    /// `self` on every byte.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    /// Absorbs a `u64` in little-endian order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` for portability).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed string (prefix prevents ambiguity between
    /// e.g. `["ab","c"]` and `["a","bc"]`).
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Current digest value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A strong 64-bit bit-mixer (the `splitmix64` finalizer).
///
/// Used to spread per-row FNV digests over the full 64-bit space before
/// they enter an order-independent multiset combination (wrapping sum):
/// raw FNV-1a outputs of short rows are too regular for plain summation,
/// while mixed digests make engineered or accidental sum collisions
/// birthday-bound.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Types that can contribute to a canonical digest.
pub trait CanonicalDigest {
    /// Feeds a canonical serialization of `self` into the hasher.
    fn digest_into(&self, h: &mut Fnv64);

    /// Convenience: digest of `self` alone.
    fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.digest_into(&mut h);
        h.finish()
    }
}

impl CanonicalDigest for crate::value::Value {
    fn digest_into(&self, h: &mut Fnv64) {
        use crate::value::Value;
        match self {
            Value::Null => h.write(&[0]),
            Value::Bool(b) => {
                h.write(&[1]);
                h.write(&[u8::from(*b)]);
            }
            Value::Int(i) => {
                h.write(&[2]);
                h.write_u64(*i as u64);
            }
            Value::Float(x) => {
                h.write(&[3]);
                h.write_u64(x.to_bits());
            }
            Value::Str(s) => {
                h.write(&[4]);
                h.write_str(s);
            }
        }
    }
}

impl<T: CanonicalDigest> CanonicalDigest for [T] {
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_usize(self.len());
        for v in self {
            v.digest_into(h);
        }
    }
}

impl<T: CanonicalDigest> CanonicalDigest for Vec<T> {
    fn digest_into(&self, h: &mut Fnv64) {
        self.as_slice().digest_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn deterministic() {
        let v = vec![Value::Int(1), Value::from("x"), Value::Null];
        assert_eq!(v.digest(), v.digest());
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(Value::Int(1).digest(), Value::Int(2).digest());
        assert_ne!(Value::Int(1).digest(), Value::Float(1.0).digest());
        assert_ne!(Value::Null.digest(), Value::Bool(false).digest());
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let a = vec![Value::from("ab"), Value::from("c")];
        let b = vec![Value::from("a"), Value::from("bc")];
        assert_ne!(a.digest(), b.digest());
    }

    /// Pinned FNV-1a reference vectors (from the canonical Fowler/Noll/Vo
    /// test suite): the digest primitive must stay byte-for-byte stable
    /// across refactors, or every persisted state digest silently changes
    /// meaning.
    #[test]
    fn known_fnv_vectors() {
        let fnv = |bytes: &[u8]| {
            let mut h = Fnv64::new();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325); // offset basis
        assert_eq!(fnv(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
    }

    /// Multi-chunk absorption equals one-shot absorption (the `Hasher`
    /// streaming contract), and the length-prefixed helpers compose from
    /// `write` exactly as documented.
    #[test]
    fn write_is_streaming_consistent() {
        let mut one = Fnv64::new();
        one.write(b"foobar");
        let mut parts = Fnv64::new();
        parts.write(b"foo");
        parts.write(b"");
        parts.write(b"bar");
        assert_eq!(one.finish(), parts.finish());

        let mut via_str = Fnv64::new();
        via_str.write_str("ab");
        let mut manual = Fnv64::new();
        manual.write_u64(2);
        manual.write(b"ab");
        assert_eq!(via_str.finish(), manual.finish());

        let mut via_u64 = Fnv64::new();
        via_u64.write_u64(0x0102_0304_0506_0708);
        let mut le = Fnv64::new();
        le.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(via_u64.finish(), le.finish());
    }

    /// `mix64` is a bijection-derived mixer: distinct inputs map to
    /// distinct, well-spread outputs (spot-checked), and zero does not map
    /// to zero (so empty-ish rows still contribute entropy to sums).
    #[test]
    fn mix64_spreads() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        // Consecutive inputs differ in roughly half their bits.
        let d = (mix64(7) ^ mix64(8)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }
}
