//! Storage-layer errors.

use std::fmt;

use crate::tuple::TupleId;
use crate::value::ValueType;

/// Errors raised by the storage layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// Referenced table does not exist in the catalog.
    UnknownTable(String),
    /// Referenced column does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A column name appears twice in one schema.
    DuplicateColumn { table: String, column: String },
    /// Row has the wrong number of values for the schema.
    ArityMismatch {
        table: String,
        expected: usize,
        found: usize,
    },
    /// Value type does not match the column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: ValueType,
        found: ValueType,
    },
    /// `NULL` written to a non-nullable column.
    NullViolation { table: String, column: String },
    /// No tuple with this id exists in the table.
    NoSuchTuple { table: String, id: TupleId },
    /// A tuple with this id already exists in the table.
    DuplicateTupleId { table: String, id: TupleId },
    /// A fault injected by an installed [`crate::fault::FaultPlan`]. The
    /// fields identify the operation the plan killed: its global 0-based
    /// index among mutating operations, the operation kind, and the table.
    Injected {
        op_index: u64,
        op: crate::fault::FaultOpKind,
        table: String,
    },
    /// Durability-layer failure: an I/O error or a structurally invalid
    /// log/snapshot file. The message carries the failing operation and the
    /// underlying cause (stringified — `std::io::Error` is not `Clone`/`Eq`).
    Wal(String),
    /// Recovery produced a database whose content digest does not match the
    /// digest recorded at the corresponding commit or snapshot point.
    RecoveryMismatch { expected: u64, found: u64 },
}

impl StorageError {
    /// Whether this error was produced by fault injection (as opposed to a
    /// genuine storage-level violation).
    pub fn is_injected(&self) -> bool {
        matches!(self, StorageError::Injected { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::DuplicateTable(t) => {
                write!(f, "table `{t}` already exists")
            }
            StorageError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                found,
            } => write!(f, "table `{table}` expects {expected} values, got {found}"),
            StorageError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for `{table}.{column}`: expected {expected}, found {found}"
            ),
            StorageError::NullViolation { table, column } => {
                write!(f, "NULL written to non-nullable column `{table}.{column}`")
            }
            StorageError::NoSuchTuple { table, id } => {
                write!(f, "no tuple {id} in table `{table}`")
            }
            StorageError::DuplicateTupleId { table, id } => {
                write!(f, "tuple {id} already exists in table `{table}`")
            }
            StorageError::Injected {
                op_index,
                op,
                table,
            } => write!(
                f,
                "injected fault: {op} on table `{table}` (mutating op #{op_index})"
            ),
            StorageError::Wal(msg) => write!(f, "durability error: {msg}"),
            StorageError::RecoveryMismatch { expected, found } => write!(
                f,
                "recovery digest mismatch: logged {expected:#018x}, recovered {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::UnknownTable("emp".into()).to_string(),
            "unknown table `emp`"
        );
        assert_eq!(
            StorageError::TypeMismatch {
                table: "t".into(),
                column: "c".into(),
                expected: ValueType::Int,
                found: ValueType::Str,
            }
            .to_string(),
            "type mismatch for `t.c`: expected INTEGER, found VARCHAR"
        );
        assert_eq!(
            StorageError::NoSuchTuple {
                table: "t".into(),
                id: TupleId(3)
            }
            .to_string(),
            "no tuple #3 in table `t`"
        );
        let injected = StorageError::Injected {
            op_index: 4,
            op: crate::fault::FaultOpKind::Delete,
            table: "t".into(),
        };
        assert_eq!(
            injected.to_string(),
            "injected fault: delete on table `t` (mutating op #4)"
        );
        assert!(injected.is_injected());
        assert!(!StorageError::UnknownTable("t".into()).is_injected());
        assert_eq!(
            StorageError::Wal("append: disk full".into()).to_string(),
            "durability error: append: disk full"
        );
        assert_eq!(
            StorageError::RecoveryMismatch {
                expected: 1,
                found: 2
            }
            .to_string(),
            "recovery digest mismatch: logged 0x0000000000000001, recovered 0x0000000000000002"
        );
    }
}
