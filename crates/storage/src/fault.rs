//! Deterministic fault injection for the storage layer.
//!
//! A [`FaultPlan`] installed on a [`crate::Database`] makes the N-th
//! mutating operation matching a table/kind pattern fail with
//! [`crate::StorageError::Injected`]. Every error path in the engine and
//! oracle above the storage layer becomes testable: atomicity of abort,
//! budget accounting under failure, CLI exit codes.
//!
//! Design points:
//!
//! * **Deterministic** — a plan either names its trigger point explicitly
//!   ([`FaultSpec::nth`]) or derives it from a seed
//!   ([`FaultPlan::seeded`]); replaying the same workload with the same
//!   plan fails at the same operation.
//! * **Shared across snapshots** — the injector state lives behind an
//!   `Arc`, so cloning a `Database` (transaction snapshots, execution-graph
//!   branching) shares the same counters: restoring a snapshot does not
//!   re-arm an already-fired fault, and the operation count is global per
//!   installation.
//! * **Invisible to semantics** — the injector is excluded from equality,
//!   digests, and display; two databases with the same contents are the
//!   same state whether or not a plan is installed.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of mutating storage operation, for fault matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOpKind {
    /// Tuple insertion (`insert`, `insert_with_id`).
    Insert,
    /// Tuple deletion.
    Delete,
    /// Tuple update (whole-row or single-column).
    Update,
    /// Write-ahead-log record append (durability layer; observed on the
    /// pseudo-table `__wal__` before the record frame is written, and the
    /// injected failure leaves a deliberately torn half-frame on disk).
    WalAppend,
    /// Write-ahead-log fsync (pseudo-table `__wal__`).
    WalSync,
    /// Full-database snapshot write (pseudo-table `__snapshot__`; observed
    /// before the temp file is created, so nothing is replaced on failure).
    SnapshotWrite,
}

impl fmt::Display for FaultOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultOpKind::Insert => "insert",
            FaultOpKind::Delete => "delete",
            FaultOpKind::Update => "update",
            FaultOpKind::WalAppend => "wal-append",
            FaultOpKind::WalSync => "wal-sync",
            FaultOpKind::SnapshotWrite => "snapshot-write",
        })
    }
}

/// One fault trigger: fail the `after`-th mutating operation (0-based,
/// counted over operations matching this spec's pattern). One-shot: a spec
/// fires at most once per installation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Restrict matching to this table (`None` = any table).
    pub table: Option<String>,
    /// Restrict matching to this operation kind (`None` = any kind).
    pub kind: Option<FaultOpKind>,
    /// How many matching operations succeed before the fault fires.
    pub after: u64,
}

impl FaultSpec {
    /// Fails the `after`-th mutating operation of any kind on any table.
    pub fn nth(after: u64) -> Self {
        FaultSpec {
            table: None,
            kind: None,
            after,
        }
    }

    /// Restricts the spec to one table.
    pub fn on_table(mut self, table: impl Into<String>) -> Self {
        self.table = Some(table.into());
        self
    }

    /// Restricts the spec to one operation kind.
    pub fn on_kind(mut self, kind: FaultOpKind) -> Self {
        self.kind = Some(kind);
        self
    }

    fn matches(&self, kind: FaultOpKind, table: &str) -> bool {
        self.kind.is_none_or(|k| k == kind) && self.table.as_deref().is_none_or(|t| t == table)
    }
}

/// A set of fault triggers, installable on a [`crate::Database`] via
/// [`crate::Database::install_fault_plan`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (never fires).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single spec.
    pub fn single(spec: FaultSpec) -> Self {
        FaultPlan { specs: vec![spec] }
    }

    /// Adds a spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// A deterministic single-fault plan derived from a seed: fails one
    /// any-table, any-kind operation with index in `[0, horizon)` chosen by
    /// a splitmix64 step of the seed. Same seed, same horizon ⇒ same fault.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        assert!(horizon > 0, "seeded fault plan needs a nonzero horizon");
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        FaultPlan::single(FaultSpec::nth(z % horizon))
    }

    /// The plan's specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

/// Shared injector state: the plan plus per-spec counters. Lives behind an
/// `Arc` on the database so snapshots share it.
pub struct FaultState {
    plan: FaultPlan,
    ops_observed: AtomicU64,
    matched: Vec<AtomicU64>,
    fired: Vec<AtomicBool>,
}

impl FaultState {
    /// Fresh state for a plan (all counters zero).
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        let n = plan.specs.len();
        Arc::new(FaultState {
            plan,
            ops_observed: AtomicU64::new(0),
            matched: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fired: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Total mutating operations observed since installation.
    pub fn ops_observed(&self) -> u64 {
        self.ops_observed.load(Ordering::Relaxed)
    }

    /// Whether any spec has fired.
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// Observes one mutating operation; returns the global operation index
    /// of a newly fired fault, if one fires here.
    pub fn observe(&self, kind: FaultOpKind, table: &str) -> Option<u64> {
        let op_index = self.ops_observed.fetch_add(1, Ordering::Relaxed);
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if !spec.matches(kind, table) {
                continue;
            }
            let m = self.matched[i].fetch_add(1, Ordering::Relaxed);
            if m == spec.after && !self.fired[i].swap(true, Ordering::Relaxed) {
                return Some(op_index);
            }
        }
        None
    }
}

impl fmt::Debug for FaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("ops_observed", &self.ops_observed())
            .field("any_fired", &self.any_fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matching() {
        let any = FaultSpec::nth(0);
        assert!(any.matches(FaultOpKind::Insert, "t"));
        let scoped = FaultSpec::nth(0).on_table("t").on_kind(FaultOpKind::Delete);
        assert!(scoped.matches(FaultOpKind::Delete, "t"));
        assert!(!scoped.matches(FaultOpKind::Delete, "u"));
        assert!(!scoped.matches(FaultOpKind::Insert, "t"));
    }

    #[test]
    fn nth_counts_matching_ops_only() {
        let st = FaultState::new(FaultPlan::single(FaultSpec::nth(1).on_table("t")));
        // Non-matching op does not advance the spec counter.
        assert_eq!(st.observe(FaultOpKind::Insert, "u"), None);
        // First match passes (after = 1 means one match succeeds first).
        assert_eq!(st.observe(FaultOpKind::Insert, "t"), None);
        // Second match fires, reporting the global op index (0-based).
        assert_eq!(st.observe(FaultOpKind::Delete, "t"), Some(2));
        // One-shot: never fires again.
        assert_eq!(st.observe(FaultOpKind::Insert, "t"), None);
        assert_eq!(st.ops_observed(), 4);
        assert!(st.any_fired());
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 17);
            let b = FaultPlan::seeded(seed, 17);
            assert_eq!(a, b);
            assert!(a.specs()[0].after < 17);
        }
        // Different seeds spread over the horizon.
        let distinct: std::collections::BTreeSet<u64> = (0..50u64)
            .map(|s| FaultPlan::seeded(s, 17).specs()[0].after)
            .collect();
        assert!(distinct.len() > 5);
    }
}
