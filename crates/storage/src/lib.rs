//! # starling-storage
//!
//! In-memory relational storage substrate for the Starling production rule
//! system — the stand-in for the Starburst DBMS prototype [HCL+90] that the
//! paper's rule system was embedded in.
//!
//! The store provides exactly what set-oriented production rules need:
//!
//! * a typed catalog of tables ([`Catalog`], [`TableSchema`], [`ColumnDef`]);
//! * tuples with **stable identity** ([`TupleId`]) — the net-effect semantics
//!   of \[WF90\] compose operations *per tuple*, so identity must survive
//!   updates;
//! * cheap cloneable snapshots ([`Database`] is `Clone`), used by the
//!   execution-graph explorer to branch on nondeterministic rule choices and
//!   by `ROLLBACK` to restore the assertion-point state;
//! * deterministic canonical digests ([`digest`]) so execution-graph states
//!   can be deduplicated and cycles detected exactly.
//!
//! The store is deliberately single-threaded: the paper's rule-processing
//! semantics are sequential (one rule considered at a time), so there is no
//! concurrency to manage.
//!
//! ```
//! use starling_storage::{ColumnDef, Database, TableSchema, Value, ValueType};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new(
//!     "emp",
//!     vec![
//!         ColumnDef::new("id", ValueType::Int),
//!         ColumnDef::nullable("salary", ValueType::Int),
//!     ],
//! )?)?;
//! let id = db.insert("emp", vec![Value::Int(1), Value::Int(100)])?;
//! db.update_column("emp", id, "salary", Value::Int(150))?;
//!
//! // Snapshots are cheap clones; digests are content-based.
//! let snap = db.clone();
//! db.delete("emp", id)?;
//! assert_ne!(db.state_digest(), snap.state_digest());
//! # Ok::<(), starling_storage::StorageError>(())
//! ```

pub mod batch;
pub mod column;
pub mod database;
pub mod digest;
pub mod error;
pub mod fault;
pub mod ops;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;
pub mod wal;

pub use batch::TableBatch;
pub use column::{Bitmap, Column, ColumnData};
pub use database::Database;
pub use digest::{CanonicalDigest, Fnv64};
pub use error::StorageError;
pub use fault::{FaultOpKind, FaultPlan, FaultSpec, FaultState};
pub use ops::Op;
pub use schema::{Catalog, ColRef, ColumnDef, TableSchema};
pub use table::Table;
pub use tuple::{Row, Tuple, TupleId};
pub use value::{Value, ValueType};
pub use wal::{CommitDelta, Recovered, RowOp, SyncPolicy, WalStore};

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
