//! The operation alphabet `O` of paper Section 3.
//!
//! `O = {(I,t) | t ∈ T} ∪ {(D,t) | t ∈ T} ∪ {(U,t.c) | t.c ∈ C}` — the
//! vocabulary shared by `Triggered-By`, `Performs`, `Can-Untrigger`, and the
//! triggering relation. It names *kinds* of modifications, not concrete
//! tuple-level changes (those live in the engine's operation log).

use std::fmt;

use serde::Serialize;

use crate::schema::{Catalog, ColRef};

/// One element of the operation set `O`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Op {
    /// `(I, t)` — insertion into table `t`.
    Insert(String),
    /// `(D, t)` — deletion from table `t`.
    Delete(String),
    /// `(U, t.c)` — update of column `c` of table `t`.
    Update(ColRef),
}

impl Op {
    /// `(U, t.c)` from table and column names.
    pub fn update(table: impl Into<String>, column: impl Into<String>) -> Self {
        Op::Update(ColRef::new(table, column))
    }

    /// The table this operation touches.
    pub fn table(&self) -> &str {
        match self {
            Op::Insert(t) | Op::Delete(t) => t,
            Op::Update(c) => &c.table,
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Op::Insert(_))
    }

    /// Whether this is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, Op::Delete(_))
    }

    /// Whether this is an update.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update(_))
    }

    /// Enumerates the full alphabet `O` for a catalog: every `(I,t)`,
    /// `(D,t)`, and `(U,t.c)`.
    pub fn alphabet(catalog: &Catalog) -> Vec<Op> {
        let mut out = Vec::new();
        for t in catalog.tables() {
            out.push(Op::Insert(t.name.clone()));
            out.push(Op::Delete(t.name.clone()));
            for c in &t.columns {
                out.push(Op::update(t.name.clone(), c.name.clone()));
            }
        }
        out
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(t) => write!(f, "(I, {t})"),
            Op::Delete(t) => write!(f, "(D, {t})"),
            Op::Update(c) => write!(f, "(U, {c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    #[test]
    fn table_accessor() {
        assert_eq!(Op::Insert("t".into()).table(), "t");
        assert_eq!(Op::Delete("t".into()).table(), "t");
        assert_eq!(Op::update("t", "c").table(), "t");
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Op::Insert("emp".into()).to_string(), "(I, emp)");
        assert_eq!(Op::Delete("emp".into()).to_string(), "(D, emp)");
        assert_eq!(Op::update("emp", "sal").to_string(), "(U, emp.sal)");
    }

    #[test]
    fn alphabet_size() {
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::new("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        // (I,t), (D,t), (U,t.a), (U,t.b)
        assert_eq!(Op::alphabet(&cat).len(), 4);
    }
}
