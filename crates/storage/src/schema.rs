//! Catalog: table schemas, column definitions, and column references.

use std::collections::BTreeMap;
use std::fmt;

use serde::Serialize;

use crate::error::StorageError;
use crate::value::{Value, ValueType};

/// A column definition within a table schema.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ColumnDef {
    /// Column name (lowercased by the parser; storage is case-preserving).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether `NULL` is permitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// Checks a value against this column's type and nullability.
    pub fn check(&self, table: &str, value: &Value) -> Result<(), StorageError> {
        match value.value_type() {
            None if self.nullable => Ok(()),
            None => Err(StorageError::NullViolation {
                table: table.to_owned(),
                column: self.name.clone(),
            }),
            Some(t) if self.ty.accepts(t) => Ok(()),
            Some(t) => Err(StorageError::TypeMismatch {
                table: table.to_owned(),
                column: self.name.clone(),
                expected: self.ty,
                found: t,
            }),
        }
    }
}

/// Schema of a single table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn {
                    table: name,
                    column: c.name.clone(),
                });
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Column definition by name.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// All column names, in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// Type-checks an entire row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            col.check(&self.name, v)?;
        }
        Ok(())
    }
}

/// A fully qualified column reference `table.column`.
///
/// This is the currency of the paper's `Reads` definition and of the
/// update-operation set `(U, t.c)` (Section 3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct ColRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Builds a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// The database catalog: the set `T` of tables and `C` of columns from
/// Section 3 of the paper.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table schema, rejecting duplicates.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        if self.tables.contains_key(&schema.name) {
            return Err(StorageError::DuplicateTable(schema.name));
        }
        self.tables.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Looks up a table schema.
    pub fn table(&self, name: &str) -> Result<&TableSchema, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Whether the catalog contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// All table schemas, ordered by name.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// All table names, ordered.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// All `(U, t.c)`-style column references in the catalog (the set `C`).
    pub fn all_columns(&self) -> Vec<ColRef> {
        self.tables
            .values()
            .flat_map(|t| {
                t.columns
                    .iter()
                    .map(|c| ColRef::new(t.name.clone(), c.name.clone()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> TableSchema {
        TableSchema::new(
            "emp",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
                ColumnDef::nullable("salary", ValueType::Float),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::new("a", ValueType::Int),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn { .. }));
    }

    #[test]
    fn column_lookup() {
        let s = emp();
        assert_eq!(s.column_index("salary"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("name").unwrap().ty, ValueType::Str);
    }

    #[test]
    fn check_row_arity_and_types() {
        let s = emp();
        assert!(s
            .check_row(&[Value::Int(1), Value::from("a"), Value::Float(9.0)])
            .is_ok());
        // Int widens into Float column.
        assert!(s
            .check_row(&[Value::Int(1), Value::from("a"), Value::Int(9)])
            .is_ok());
        // Nullable column accepts NULL.
        assert!(s
            .check_row(&[Value::Int(1), Value::from("a"), Value::Null])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::from("a")]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Null, Value::from("a"), Value::Null]),
            Err(StorageError::NullViolation { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::from("x"), Value::from("a"), Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn catalog_add_and_lookup() {
        let mut c = Catalog::new();
        c.add_table(emp()).unwrap();
        assert!(c.contains("emp"));
        assert!(c.table("emp").is_ok());
        assert!(matches!(
            c.table("dept"),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(matches!(
            c.add_table(emp()),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn all_columns_enumerates_c() {
        let mut c = Catalog::new();
        c.add_table(emp()).unwrap();
        let cols = c.all_columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&ColRef::new("emp", "salary")));
    }

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::new("emp", "salary").to_string(), "emp.salary");
    }
}
