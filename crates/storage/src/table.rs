//! A single stored table: schema plus identified rows, with copy-on-write
//! storage and an incrementally maintained content digest.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use crate::batch::TableBatch;
use crate::digest::{mix64, CanonicalDigest, Fnv64};
use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::tuple::{Row, Tuple, TupleId};
use crate::value::Value;

/// Lazily built columnar view of one table version (see
/// [`crate::batch`]). Lives inside [`TableCore`] so every CoW snapshot
/// sharing the same rows also shares the batch — the flattening cost is
/// paid once per table *version*, however many snapshots scan it.
///
/// `Clone` deliberately produces an **empty** cache: cloning happens
/// exactly when `Arc::make_mut` unshares a core ahead of a mutation, and
/// the about-to-be-mutated copy must not inherit a stale batch (nor pay to
/// deep-copy one it would immediately drop).
#[derive(Debug, Default)]
struct ColumnarCache(OnceLock<TableBatch>);

impl Clone for ColumnarCache {
    fn clone(&self) -> Self {
        ColumnarCache(OnceLock::new())
    }
}

/// The shared, copy-on-write payload of a table: rows plus the cached
/// content digest. Cloning a [`Table`] (and therefore a whole
/// [`crate::Database`]) only bumps the `Arc` refcount; the first mutation
/// through a shared handle clones this core — and only this table's core.
#[derive(Clone, Debug)]
struct TableCore {
    rows: BTreeMap<TupleId, Row>,
    /// Order-independent multiset digest of the row contents (tuple ids
    /// excluded), maintained incrementally: each mutation folds the touched
    /// row's digest in or out, so reading the table digest never re-hashes
    /// the rows. Invariant: always equals
    /// [`Table::recompute_content_digest`] (property-tested).
    content: u64,
    /// Columnar view of this version, built on first use and dropped by
    /// every mutation (each mutator resets it right after `Arc::make_mut`,
    /// which covers the already-unshared case `Clone` can't).
    columnar: ColumnarCache,
}

impl PartialEq for TableCore {
    fn eq(&self, other: &Self) -> bool {
        // The columnar cache is derived state; equality is over contents.
        self.rows == other.rows && self.content == other.content
    }
}

impl Eq for TableCore {}

/// A stored table.
///
/// Rows are keyed by [`TupleId`] in a `BTreeMap`, giving deterministic scan
/// order; the map lives behind an `Arc` so snapshots are refcount bumps and
/// mutation copies only the touched table (copy-on-write).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    schema: Arc<TableSchema>,
    core: Arc<TableCore>,
}

/// Digest of one row's contents as it enters the multiset combination.
///
/// The raw FNV digest is passed through [`mix64`] so the wrapping-sum
/// combination in [`TableCore::content`] is collision-resistant against the
/// regular structure of short rows.
#[inline]
fn row_entry_digest(row: &Row) -> u64 {
    let mut h = Fnv64::new();
    row.as_slice().digest_into(&mut h);
    mix64(h.finish())
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema: Arc::new(schema),
            core: Arc::new(TableCore {
                rows: BTreeMap::new(),
                content: 0,
                columnar: ColumnarCache::default(),
            }),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.core.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.core.rows.is_empty()
    }

    /// Whether this handle shares its row storage with another handle
    /// (diagnostic; used by the CoW tests).
    pub fn shares_storage_with(&self, other: &Table) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Inserts a row under a caller-allocated id.
    ///
    /// The id must be fresh; [`crate::Database`] allocates ids globally.
    pub fn insert(&mut self, id: TupleId, row: Row) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        if self.core.rows.contains_key(&id) {
            return Err(StorageError::DuplicateTupleId {
                table: self.schema.name.clone(),
                id,
            });
        }
        let entry = row_entry_digest(&row);
        let core = Arc::make_mut(&mut self.core);
        core.columnar = ColumnarCache::default();
        core.rows.insert(id, row);
        core.content = core.content.wrapping_add(entry);
        Ok(())
    }

    /// Deletes a row, returning its final values.
    pub fn delete(&mut self, id: TupleId) -> Result<Row, StorageError> {
        if !self.core.rows.contains_key(&id) {
            return Err(StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            });
        }
        let core = Arc::make_mut(&mut self.core);
        core.columnar = ColumnarCache::default();
        let old = core.rows.remove(&id).expect("presence checked above");
        core.content = core.content.wrapping_sub(row_entry_digest(&old));
        Ok(old)
    }

    /// Replaces a row's values wholesale, returning the old values.
    pub fn update(&mut self, id: TupleId, row: Row) -> Result<Row, StorageError> {
        self.schema.check_row(&row)?;
        if !self.core.rows.contains_key(&id) {
            return Err(StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            });
        }
        let entry = row_entry_digest(&row);
        let core = Arc::make_mut(&mut self.core);
        core.columnar = ColumnarCache::default();
        let slot = core.rows.get_mut(&id).expect("presence checked above");
        let old = std::mem::replace(slot, row);
        core.content = core
            .content
            .wrapping_sub(row_entry_digest(&old))
            .wrapping_add(entry);
        Ok(old)
    }

    /// Updates one column of a row, returning the previous full row.
    pub fn update_column(
        &mut self,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<Row, StorageError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.schema.name.clone(),
                column: column.to_owned(),
            })?;
        self.schema.columns[idx].check(&self.schema.name, &value)?;
        if !self.core.rows.contains_key(&id) {
            return Err(StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            });
        }
        let core = Arc::make_mut(&mut self.core);
        core.columnar = ColumnarCache::default();
        let slot = core.rows.get_mut(&id).expect("presence checked above");
        let old = slot.clone();
        slot[idx] = value;
        core.content = core
            .content
            .wrapping_sub(row_entry_digest(&old))
            .wrapping_add(row_entry_digest(slot));
        Ok(old)
    }

    /// A row by id.
    pub fn get(&self, id: TupleId) -> Option<&Row> {
        self.core.rows.get(&id)
    }

    /// Whether a tuple with this id exists.
    pub fn contains(&self, id: TupleId) -> bool {
        self.core.rows.contains_key(&id)
    }

    /// Iterates `(id, row)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Row)> {
        self.core.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Iterates borrowed rows in id order (the scan primitive for compiled
    /// plans: no per-row clones, no id bookkeeping).
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.core.rows.values()
    }

    /// Iterates owned [`Tuple`]s in id order.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.core
            .rows
            .iter()
            .map(|(id, row)| Tuple::new(*id, row.clone()))
    }

    /// All tuple ids, in order.
    pub fn ids(&self) -> Vec<TupleId> {
        self.core.rows.keys().copied().collect()
    }

    /// The columnar view of this table version, built on first use and
    /// cached in the shared core until the next mutation. Snapshots sharing
    /// storage share the batch; the borrow is tied to this handle.
    pub fn columnar(&self) -> &TableBatch {
        self.core.columnar.0.get_or_init(|| {
            TableBatch::build(&self.schema, self.core.rows.iter(), self.core.rows.len())
        })
    }

    /// The cached content digest: an order-independent multiset digest of
    /// the row contents (ids excluded), maintained incrementally by every
    /// mutation. O(1).
    pub fn content_digest(&self) -> u64 {
        self.core.content
    }

    /// Recomputes the content digest from scratch by hashing every row.
    /// Must always equal [`Self::content_digest`] — the incremental-digest
    /// property tests compare the two after randomized operation sequences.
    pub fn recompute_content_digest(&self) -> u64 {
        self.core
            .rows
            .values()
            .fold(0u64, |acc, row| acc.wrapping_add(row_entry_digest(row)))
    }
}

impl CanonicalDigest for Table {
    /// Digests the table as a **multiset of rows**, deliberately ignoring
    /// tuple ids: two database states with the same contents are the same
    /// observable state even when different execution orders allocated ids
    /// differently. (Tuple identity matters *within* a transition — the
    /// net-effect algebra — never across final states.)
    ///
    /// Reads the incrementally maintained cache: O(name length), never
    /// O(rows).
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_str(&self.schema.name);
        h.write_usize(self.core.rows.len());
        h.write_u64(self.core.content);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn tbl() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::nullable("b", ValueType::Str),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_get_delete() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::from("x")])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(TupleId(1)).unwrap()[0], Value::Int(1));
        let old = t.delete(TupleId(1)).unwrap();
        assert_eq!(old[1], Value::from("x"));
        assert!(t.is_empty());
        assert!(matches!(
            t.delete(TupleId(1)),
            Err(StorageError::NoSuchTuple { .. })
        ));
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = tbl();
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::from("x"), Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::Int(2), Value::Null]),
            Err(StorageError::DuplicateTupleId { .. })
        ));
    }

    #[test]
    fn update_column_preserves_identity() {
        let mut t = tbl();
        t.insert(TupleId(5), vec![Value::Int(1), Value::Null])
            .unwrap();
        let old = t.update_column(TupleId(5), "a", Value::Int(9)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.get(TupleId(5)).unwrap()[0], Value::Int(9));
        assert!(matches!(
            t.update_column(TupleId(5), "zz", Value::Int(0)),
            Err(StorageError::UnknownColumn { .. })
        ));
        assert!(matches!(
            t.update_column(TupleId(5), "a", Value::from("s")),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn whole_row_update() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        let old = t
            .update(TupleId(1), vec![Value::Int(2), Value::from("y")])
            .unwrap();
        assert_eq!(old, vec![Value::Int(1), Value::Null]);
        assert_eq!(
            t.get(TupleId(1)).unwrap(),
            &vec![Value::Int(2), Value::from("y")]
        );
    }

    #[test]
    fn digest_changes_with_content() {
        let mut t1 = tbl();
        let mut t2 = tbl();
        assert_eq!(t1.digest(), t2.digest());
        t1.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert_ne!(t1.digest(), t2.digest());
        t2.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(t1.digest(), t2.digest());
    }

    #[test]
    fn scan_order_is_deterministic() {
        let mut t = tbl();
        t.insert(TupleId(3), vec![Value::Int(3), Value::Null])
            .unwrap();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        t.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        let ids: Vec<_> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        let snap = t.clone();
        assert!(t.shares_storage_with(&snap));
        // First mutation through one handle unshares it…
        t.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        assert!(!t.shares_storage_with(&snap));
        // …and the snapshot still sees the old contents.
        assert_eq!(snap.len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn failed_mutations_do_not_unshare() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        let snap = t.clone();
        // Every error path returns before copy-on-write triggers.
        assert!(t
            .insert(TupleId(1), vec![Value::Int(9), Value::Null])
            .is_err());
        assert!(t.delete(TupleId(77)).is_err());
        assert!(t
            .update(TupleId(77), vec![Value::Int(9), Value::Null])
            .is_err());
        assert!(t.update_column(TupleId(1), "zz", Value::Int(0)).is_err());
        assert!(t.shares_storage_with(&snap));
    }

    #[test]
    fn incremental_digest_matches_recompute() {
        let mut t = tbl();
        assert_eq!(t.content_digest(), t.recompute_content_digest());
        t.insert(TupleId(1), vec![Value::Int(1), Value::from("x")])
            .unwrap();
        t.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        assert_eq!(t.content_digest(), t.recompute_content_digest());
        t.update(TupleId(1), vec![Value::Int(7), Value::Null])
            .unwrap();
        assert_eq!(t.content_digest(), t.recompute_content_digest());
        t.update_column(TupleId(2), "a", Value::Int(9)).unwrap();
        assert_eq!(t.content_digest(), t.recompute_content_digest());
        t.delete(TupleId(1)).unwrap();
        assert_eq!(t.content_digest(), t.recompute_content_digest());
        t.delete(TupleId(2)).unwrap();
        assert_eq!(t.content_digest(), 0);
    }

    /// The columnar view reflects every mutation (the cache is dropped on
    /// write) and is shared across CoW snapshots of the same version.
    #[test]
    fn columnar_view_tracks_mutations() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::from("x")])
            .unwrap();
        t.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        let b = t.columnar();
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(1, 0), Value::Int(2));
        // A snapshot sharing storage shares the cached batch.
        let snap = t.clone();
        assert!(std::ptr::eq(t.columnar(), snap.columnar()));
        // Mutation through one handle rebuilds that handle's view only.
        t.update_column(TupleId(2), "a", Value::Int(9)).unwrap();
        assert_eq!(t.columnar().value(1, 0), Value::Int(9));
        assert_eq!(snap.columnar().value(1, 0), Value::Int(2));
        // Mutating an *unshared* table must also drop the cache.
        drop(snap);
        t.delete(TupleId(1)).unwrap();
        assert_eq!(t.columnar().len(), 1);
        assert_eq!(t.columnar().ids(), &[TupleId(2)]);
    }

    /// The content digest ignores tuple ids and insertion order: the same
    /// multiset of rows digests identically however it was produced.
    #[test]
    fn content_digest_is_id_and_order_independent() {
        let mut a = tbl();
        a.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        a.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        let mut b = tbl();
        b.insert(TupleId(9), vec![Value::Int(2), Value::Null])
            .unwrap();
        b.insert(TupleId(4), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(a.digest(), b.digest());
    }
}
