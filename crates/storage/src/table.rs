//! A single stored table: schema plus identified rows.

use std::collections::BTreeMap;

use crate::digest::{CanonicalDigest, Fnv64};
use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::tuple::{Row, Tuple, TupleId};
use crate::value::Value;

/// A stored table.
///
/// Rows are keyed by [`TupleId`] in a `BTreeMap`, giving deterministic scan
/// order and cheap structural cloning for snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    schema: TableSchema,
    rows: BTreeMap<TupleId, Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row under a caller-allocated id.
    ///
    /// The id must be fresh; [`crate::Database`] allocates ids globally.
    pub fn insert(&mut self, id: TupleId, row: Row) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        if self.rows.contains_key(&id) {
            return Err(StorageError::DuplicateTupleId {
                table: self.schema.name.clone(),
                id,
            });
        }
        self.rows.insert(id, row);
        Ok(())
    }

    /// Deletes a row, returning its final values.
    pub fn delete(&mut self, id: TupleId) -> Result<Row, StorageError> {
        self.rows
            .remove(&id)
            .ok_or_else(|| StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            })
    }

    /// Replaces a row's values wholesale, returning the old values.
    pub fn update(&mut self, id: TupleId, row: Row) -> Result<Row, StorageError> {
        self.schema.check_row(&row)?;
        match self.rows.get_mut(&id) {
            Some(slot) => Ok(std::mem::replace(slot, row)),
            None => Err(StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            }),
        }
    }

    /// Updates one column of a row, returning the previous full row.
    pub fn update_column(
        &mut self,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<Row, StorageError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.schema.name.clone(),
                column: column.to_owned(),
            })?;
        self.schema.columns[idx].check(&self.schema.name, &value)?;
        match self.rows.get_mut(&id) {
            Some(slot) => {
                let old = slot.clone();
                slot[idx] = value;
                Ok(old)
            }
            None => Err(StorageError::NoSuchTuple {
                table: self.schema.name.clone(),
                id,
            }),
        }
    }

    /// A row by id.
    pub fn get(&self, id: TupleId) -> Option<&Row> {
        self.rows.get(&id)
    }

    /// Whether a tuple with this id exists.
    pub fn contains(&self, id: TupleId) -> bool {
        self.rows.contains_key(&id)
    }

    /// Iterates `(id, row)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Row)> {
        self.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Iterates owned [`Tuple`]s in id order.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.rows
            .iter()
            .map(|(id, row)| Tuple::new(*id, row.clone()))
    }

    /// All tuple ids, in order.
    pub fn ids(&self) -> Vec<TupleId> {
        self.rows.keys().copied().collect()
    }
}

impl CanonicalDigest for Table {
    /// Digests the table as a **sorted multiset of rows**, deliberately
    /// ignoring tuple ids: two database states with the same contents are
    /// the same observable state even when different execution orders
    /// allocated ids differently. (Tuple identity matters *within* a
    /// transition — the net-effect algebra — never across final states.)
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_str(&self.schema.name);
        h.write_usize(self.rows.len());
        let mut rows: Vec<&Row> = self.rows.values().collect();
        rows.sort_unstable();
        for row in rows {
            row.as_slice().digest_into(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn tbl() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::nullable("b", ValueType::Str),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_get_delete() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::from("x")])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(TupleId(1)).unwrap()[0], Value::Int(1));
        let old = t.delete(TupleId(1)).unwrap();
        assert_eq!(old[1], Value::from("x"));
        assert!(t.is_empty());
        assert!(matches!(
            t.delete(TupleId(1)),
            Err(StorageError::NoSuchTuple { .. })
        ));
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = tbl();
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::from("x"), Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert!(matches!(
            t.insert(TupleId(1), vec![Value::Int(2), Value::Null]),
            Err(StorageError::DuplicateTupleId { .. })
        ));
    }

    #[test]
    fn update_column_preserves_identity() {
        let mut t = tbl();
        t.insert(TupleId(5), vec![Value::Int(1), Value::Null])
            .unwrap();
        let old = t.update_column(TupleId(5), "a", Value::Int(9)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.get(TupleId(5)).unwrap()[0], Value::Int(9));
        assert!(matches!(
            t.update_column(TupleId(5), "zz", Value::Int(0)),
            Err(StorageError::UnknownColumn { .. })
        ));
        assert!(matches!(
            t.update_column(TupleId(5), "a", Value::from("s")),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn whole_row_update() {
        let mut t = tbl();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        let old = t
            .update(TupleId(1), vec![Value::Int(2), Value::from("y")])
            .unwrap();
        assert_eq!(old, vec![Value::Int(1), Value::Null]);
        assert_eq!(
            t.get(TupleId(1)).unwrap(),
            &vec![Value::Int(2), Value::from("y")]
        );
    }

    #[test]
    fn digest_changes_with_content() {
        let mut t1 = tbl();
        let mut t2 = tbl();
        assert_eq!(t1.digest(), t2.digest());
        t1.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert_ne!(t1.digest(), t2.digest());
        t2.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(t1.digest(), t2.digest());
    }

    #[test]
    fn scan_order_is_deterministic() {
        let mut t = tbl();
        t.insert(TupleId(3), vec![Value::Int(3), Value::Null])
            .unwrap();
        t.insert(TupleId(1), vec![Value::Int(1), Value::Null])
            .unwrap();
        t.insert(TupleId(2), vec![Value::Int(2), Value::Null])
            .unwrap();
        let ids: Vec<_> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
