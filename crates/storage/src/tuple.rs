//! Tuple identity and rows.

use std::fmt;

use serde::Serialize;

use crate::value::Value;

/// Stable identity of a tuple, unique within a [`crate::Database`].
///
/// Net-effect composition (\[WF90\]) is defined *per tuple*: "if a tuple is
/// updated several times, only the composite update is considered", etc.
/// That notion requires tuples to keep their identity across updates, which
/// `TupleId` provides. Ids are never reused, even after deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A row of values, positionally matching a table schema.
pub type Row = Vec<Value>;

/// A tuple: identity plus current values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Tuple {
    /// Stable identity.
    pub id: TupleId,
    /// Current values, positionally matching the table schema.
    pub values: Row,
}

impl Tuple {
    /// Builds a tuple.
    pub fn new(id: TupleId, values: Row) -> Self {
        Tuple { id, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_display_and_order() {
        assert_eq!(TupleId(7).to_string(), "#7");
        assert!(TupleId(1) < TupleId(2));
    }

    #[test]
    fn tuple_construction() {
        let t = Tuple::new(TupleId(1), vec![Value::Int(5)]);
        assert_eq!(t.id, TupleId(1));
        assert_eq!(t.values, vec![Value::Int(5)]);
    }
}
