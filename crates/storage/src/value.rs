//! SQL values and value types.
//!
//! [`Value`] carries a **total** order (`Ord`) used for canonical
//! serialization, digesting, and `BTreeSet`-based result deduplication. SQL's
//! three-valued comparison semantics (where `NULL` compares as *unknown*) are
//! implemented separately in the SQL evaluator; this order is purely
//! structural: `Null < Bool < Int/Float (numeric order) < Str`.

use std::cmp::Ordering;
use std::fmt;

use serde::Serialize;

/// The type of a [`Value`] (excluding `NULL`, which inhabits every type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum ValueType {
    /// Boolean (`TRUE` / `FALSE`).
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl ValueType {
    /// Keyword used in `CREATE TABLE` DDL for this type.
    pub fn keyword(self) -> &'static str {
        match self {
            ValueType::Bool => "BOOLEAN",
            ValueType::Int => "INTEGER",
            ValueType::Float => "FLOAT",
            ValueType::Str => "VARCHAR",
        }
    }

    /// Whether a value of type `from` is acceptable where `self` is expected.
    ///
    /// Integers are accepted in float columns (the only implicit widening the
    /// SQL subset performs).
    pub fn accepts(self, from: ValueType) -> bool {
        self == from || (self == ValueType::Float && from == ValueType::Int)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A single SQL value.
#[derive(Clone, Debug, Serialize)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float. `NaN` is permitted and ordered via `f64::total_cmp`.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// A string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The value's type, or `None` for `NULL`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// True iff this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, widening `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is `NULL` (*unknown*), or when
    /// the operands are of incomparable types.
    ///
    /// Numeric values compare across `Int`/`Float`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Discriminant rank for the structural total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed numerics order numerically, breaking exact ties by
            // putting Int first so Int(1) != Float(1.0) structurally.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    /// Renders as a SQL literal (strings quoted with `'`, quotes doubled).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(true) => f.write_str("TRUE"),
            Value::Bool(false) => f.write_str("FALSE"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(3).value_type(), Some(ValueType::Int));
        assert_eq!(Value::from("x").value_type(), Some(ValueType::Str));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Float(1.5).value_type(), Some(ValueType::Float));
    }

    #[test]
    fn accepts_widening() {
        assert!(ValueType::Float.accepts(ValueType::Int));
        assert!(!ValueType::Int.accepts(ValueType::Float));
        assert!(ValueType::Str.accepts(ValueType::Str));
        assert!(!ValueType::Bool.accepts(ValueType::Int));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::from("1")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks() {
        let mut vs = vec![
            Value::from("a"),
            Value::Int(0),
            Value::Null,
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Int(0),
                Value::from("a")
            ]
        );
    }

    #[test]
    fn total_order_distinguishes_int_and_float() {
        // Structurally distinct even though SQL-equal.
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn nan_is_ordered() {
        // total_cmp puts NaN above all other floats; order must be total.
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_sql_literals() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from("it's").to_string(), "'it''s'");
    }
}
