//! Net-effect write-ahead log and full-database snapshots.
//!
//! The paper's central object — the *net effect* of a rule-processing
//! transition (\[WF90\]) — is exactly the unit this module logs durably: a
//! committed transition is captured as a [`CommitDelta`] (schemas created,
//! per-tuple row operations, the allocator position, optionally the full
//! rule-program text when DDL changed it) and appended to an on-disk log.
//! Periodically the whole database is written as a snapshot keyed by the
//! canonical content digest, and the log is truncated.
//!
//! # File layout
//!
//! A store directory holds two files:
//!
//! * `wal.log` — an 8-byte magic header followed by records framed as
//!   `[len: u32 LE][checksum: u64 LE][payload]`, where the checksum is
//!   `mix64(fnv64(payload))`. Recovery replays records in order and
//!   **truncates the torn tail**: the first incomplete or checksum-failing
//!   record and everything after it is discarded (a crash mid-append loses
//!   at most the unacknowledged record).
//! * `snapshot.bin` — a complete database image plus the rule-program text,
//!   written to a temp file, fsynced, then atomically renamed into place.
//!
//! # Sequence numbers
//!
//! Every commit record carries a monotonically increasing sequence number
//! and the snapshot records the last sequence it contains. Snapshot rotation
//! writes the snapshot *first* and truncates the log *second*, so a crash
//! between the two leaves log records the snapshot already covers; recovery
//! skips records with `seq <= snapshot.last_seq` instead of double-applying
//! them (deltas are not idempotent).
//!
//! # Verification
//!
//! Each commit record stores the post-state digest; replay recomputes the
//! incremental digest and fails with [`StorageError::RecoveryMismatch`] on
//! any divergence, so corruption that survives the per-record checksum is
//! still caught at the state level. The snapshot digest is checked the same
//! way.
//!
//! # Fault injection
//!
//! A shared [`FaultState`] (see [`crate::fault`]) can be attached; appends,
//! fsyncs, and snapshot writes observe `WalAppend` / `WalSync` /
//! `SnapshotWrite` operations on the pseudo-tables `__wal__` and
//! `__snapshot__`. An injected `WalAppend` deliberately leaves a **torn
//! half-frame** on disk before failing, so the recovery truncation path is
//! exercised by the crash-point harness, not just by unit tests.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::database::Database;
use crate::digest::{mix64, Fnv64};
use crate::error::StorageError;
use crate::fault::{FaultOpKind, FaultState};
use crate::schema::{ColumnDef, TableSchema};
use crate::tuple::{Row, TupleId};
use crate::value::{Value, ValueType};

/// Magic header of `wal.log`.
const WAL_MAGIC: &[u8; 8] = b"STRLWAL1";
/// Magic header of `snapshot.bin`.
const SNAP_MAGIC: &[u8; 8] = b"STRLSNP1";
const WAL_FILE: &str = "wal.log";
const SNAP_FILE: &str = "snapshot.bin";
const SNAP_TMP: &str = "snapshot.tmp";
/// Pseudo-table names reported to the fault injector.
const WAL_TABLE: &str = "__wal__";
const SNAP_TABLE: &str = "__snapshot__";
/// Reject frames larger than this on read: a corrupted length prefix must
/// not trigger a multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = 1 << 30;
/// In [`SyncPolicy::Batch`] mode, fsync after this many appends.
const BATCH_SYNC_EVERY: u64 = 32;

/// When appended records are fsynced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append is fsynced before it is acknowledged: an acknowledged
    /// commit survives `kill -9`.
    #[default]
    Always,
    /// Fsync every [`BATCH_SYNC_EVERY`] appends and at snapshot/detach
    /// points: higher throughput, a crash may lose the last unsynced batch
    /// (recovery still lands on a consistent earlier state).
    Batch,
}

impl SyncPolicy {
    /// Parses a policy name as used by `--sync` flags.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "always" => Some(SyncPolicy::Always),
            "batch" => Some(SyncPolicy::Batch),
            _ => None,
        }
    }

    /// The flag-level name.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
        }
    }
}

/// One logged row-level operation, keyed by the stable [`TupleId`] so
/// replay composes per tuple exactly as the \[WF90\] net effect does.
#[derive(Clone, Debug, PartialEq)]
pub enum RowOp {
    /// Tuple present in post but not base.
    Insert {
        table: String,
        id: TupleId,
        row: Row,
    },
    /// Tuple present in both with different values; `row` is the post image.
    Update {
        table: String,
        id: TupleId,
        row: Row,
    },
    /// Tuple present in base but not post.
    Delete { table: String, id: TupleId },
}

/// The net effect of one committed transition: everything needed to carry a
/// database from the pre-state to the post-state.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitDelta {
    /// Monotonic sequence number, stamped by [`WalStore::append_commit`].
    pub seq: u64,
    /// Schemas created by this transition (the language has no `DROP
    /// TABLE`, so schema DDL is append-only).
    pub created: Vec<TableSchema>,
    /// Row operations, composed per tuple.
    pub ops: Vec<RowOp>,
    /// The full rule-program text after this transition, if rule DDL or a
    /// refinement directive (`CERTIFY` / `ORDER`) changed it. **Replace**
    /// semantics: recovery keeps only the latest program text.
    pub rules: Option<String>,
    /// Exact allocator position of the post-state.
    pub next_tuple_id: u64,
    /// Canonical digest of the post-state, verified on replay.
    pub post_digest: u64,
}

impl CommitDelta {
    /// Computes the net effect carrying `base` to `post` by structural
    /// diff, which captures *everything* that changed — including DDL
    /// executed outside any transaction snapshot. `seq` is left 0 for
    /// [`WalStore::append_commit`] to stamp.
    pub fn diff(base: &Database, post: &Database) -> CommitDelta {
        let mut created = Vec::new();
        for schema in post.catalog().tables() {
            if !base.catalog().contains(&schema.name) {
                created.push(schema.clone());
            }
        }
        let mut ops = Vec::new();
        for table in post.tables() {
            let name = table.name();
            match base.table(name) {
                Err(_) => {
                    for (id, row) in table.iter() {
                        ops.push(RowOp::Insert {
                            table: name.to_owned(),
                            id,
                            row: row.clone(),
                        });
                    }
                }
                Ok(old) if old.shares_storage_with(table) => {}
                Ok(old) => {
                    // Merge-walk both id-ordered row maps.
                    let mut a = old.iter().peekable();
                    let mut b = table.iter().peekable();
                    loop {
                        match (a.peek(), b.peek()) {
                            (None, None) => break,
                            (Some((ia, _)), Some((ib, _))) if ia == ib => {
                                let (_, ra) = a.next().unwrap();
                                let (id, rb) = b.next().unwrap();
                                if ra != rb {
                                    ops.push(RowOp::Update {
                                        table: name.to_owned(),
                                        id,
                                        row: rb.clone(),
                                    });
                                }
                            }
                            (Some((ia, _)), Some((ib, _))) if ia < ib => {
                                let (id, _) = a.next().unwrap();
                                ops.push(RowOp::Delete {
                                    table: name.to_owned(),
                                    id,
                                });
                            }
                            (Some(_), None) => {
                                let (id, _) = a.next().unwrap();
                                ops.push(RowOp::Delete {
                                    table: name.to_owned(),
                                    id,
                                });
                            }
                            _ => {
                                let (id, rb) = b.next().unwrap();
                                ops.push(RowOp::Insert {
                                    table: name.to_owned(),
                                    id,
                                    row: rb.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        CommitDelta {
            seq: 0,
            created,
            ops,
            rules: None,
            next_tuple_id: post.next_tuple_id(),
            post_digest: post.state_digest(),
        }
    }

    /// Applies the delta to `db` and verifies the resulting digest against
    /// the logged post-state digest.
    pub fn apply(&self, db: &mut Database) -> Result<(), StorageError> {
        for schema in &self.created {
            db.create_table(schema.clone())?;
        }
        for op in &self.ops {
            match op {
                RowOp::Insert { table, id, row } => db.insert_with_id(table, *id, row.clone())?,
                RowOp::Update { table, id, row } => {
                    db.update(table, *id, row.clone())?;
                }
                RowOp::Delete { table, id } => {
                    db.delete(table, *id)?;
                }
            }
        }
        db.set_next_tuple_id(self.next_tuple_id);
        let found = db.state_digest();
        if found != self.post_digest {
            return Err(StorageError::RecoveryMismatch {
                expected: self.post_digest,
                found,
            });
        }
        Ok(())
    }

    /// Whether the delta changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.ops.is_empty() && self.rules.is_none()
    }
}

/// The state reconstructed by [`WalStore::open`].
#[derive(Debug)]
pub struct Recovered {
    /// The recovered database (snapshot plus replayed WAL tail).
    pub db: Database,
    /// The latest persisted rule-program text (empty if none was logged).
    pub rules_text: String,
    /// The last applied commit sequence number (0 if none).
    pub last_seq: u64,
    /// Number of WAL records applied (excluding ones the snapshot covered).
    pub records_applied: usize,
    /// Bytes discarded from the torn tail, if any.
    pub truncated_bytes: u64,
    /// Whether a snapshot file was loaded.
    pub snapshot_loaded: bool,
}

impl Recovered {
    /// Whether the store held no durable state at all.
    pub fn is_empty(&self) -> bool {
        !self.snapshot_loaded && self.last_seq == 0 && self.rules_text.is_empty()
    }
}

/// An open durable store: the WAL file handle plus append/snapshot state.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    wal: File,
    /// Logical end of the log; bytes past it are torn garbage awaiting
    /// overwrite (rejected by checksum if ever read back).
    wal_len: u64,
    /// Whether a failed append may have left garbage past `wal_len`.
    dirty_tail: bool,
    next_seq: u64,
    sync: SyncPolicy,
    appends_since_sync: u64,
    fault: Option<Arc<FaultState>>,
}

impl WalStore {
    /// Opens (creating if absent) the store at `dir` and recovers its
    /// state: latest valid snapshot, then the WAL tail, truncating torn
    /// trailing records and verifying every digest along the way.
    pub fn open(
        dir: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<(WalStore, Recovered), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| wal_err("create store dir", &e))?;

        let (mut db, mut rules_text, mut last_seq, snapshot_loaded) =
            match read_snapshot(&dir.join(SNAP_FILE))? {
                Some((db, rules, seq)) => (db, rules, seq, true),
                None => (Database::new(), String::new(), 0, false),
            };

        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))
            .map_err(|e| wal_err("open wal.log", &e))?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)
            .map_err(|e| wal_err("read wal.log", &e))?;

        if bytes.len() < WAL_MAGIC.len() || !bytes.starts_with(WAL_MAGIC) {
            if WAL_MAGIC.starts_with(&bytes[..]) {
                // Empty or torn header write: reinitialize.
                wal.set_len(0)
                    .map_err(|e| wal_err("truncate wal.log", &e))?;
                wal.seek(SeekFrom::Start(0))
                    .map_err(|e| wal_err("seek wal.log", &e))?;
                wal.write_all(WAL_MAGIC)
                    .map_err(|e| wal_err("write wal magic", &e))?;
                bytes = WAL_MAGIC.to_vec();
            } else {
                return Err(StorageError::Wal(format!(
                    "{} is not a starling wal (bad magic)",
                    dir.join(WAL_FILE).display()
                )));
            }
        }

        // Replay, remembering where the last fully valid record ends.
        let mut pos = WAL_MAGIC.len();
        let mut records_applied = 0usize;
        while let Some((payload, end)) = next_frame(&bytes, pos) {
            let delta = decode_delta(payload)?;
            if delta.seq > last_seq {
                if delta.seq != last_seq + 1 {
                    return Err(StorageError::Wal(format!(
                        "wal sequence gap: expected {}, found {}",
                        last_seq + 1,
                        delta.seq
                    )));
                }
                delta.apply(&mut db)?;
                if let Some(text) = &delta.rules {
                    rules_text = text.clone();
                }
                last_seq = delta.seq;
                records_applied += 1;
            }
            // Records with seq <= snapshot last_seq were covered by the
            // snapshot (crash between snapshot rename and log truncation).
            pos = end;
        }

        let truncated_bytes = (bytes.len() - pos) as u64;
        if truncated_bytes > 0 {
            wal.set_len(pos as u64)
                .map_err(|e| wal_err("truncate torn tail", &e))?;
        }
        wal.seek(SeekFrom::Start(pos as u64))
            .map_err(|e| wal_err("seek wal.log", &e))?;

        let store = WalStore {
            dir,
            wal,
            wal_len: pos as u64,
            dirty_tail: false,
            next_seq: last_seq + 1,
            sync,
            appends_since_sync: 0,
            fault: None,
        };
        let recovered = Recovered {
            db,
            rules_text,
            last_seq,
            records_applied,
            truncated_bytes,
            snapshot_loaded,
        };
        Ok((store, recovered))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// The sequence number the next commit will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Attaches (or clears) a shared fault injector; WAL appends, syncs,
    /// and snapshot writes will observe it.
    pub fn set_fault_state(&mut self, fault: Option<Arc<FaultState>>) {
        self.fault = fault;
    }

    fn check_fault(&self, op: FaultOpKind, table: &str) -> Result<(), StorageError> {
        if let Some(state) = &self.fault {
            if let Some(op_index) = state.observe(op, table) {
                return Err(StorageError::Injected {
                    op_index,
                    op,
                    table: table.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Stamps the next sequence number on `delta` and appends it. On
    /// success the record is durable per the sync policy; on failure the
    /// log's logical state is unchanged (a torn partial frame may remain on
    /// disk, to be overwritten by the next append and rejected by checksum
    /// if the process dies first).
    pub fn append_commit(&mut self, delta: &mut CommitDelta) -> Result<(), StorageError> {
        delta.seq = self.next_seq;
        let payload = encode_delta(delta);
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        if let Err(e) = self.check_fault(FaultOpKind::WalAppend, WAL_TABLE) {
            // Simulate a crash mid-append: half the frame reaches the disk.
            let torn = &frame[..frame.len() / 2];
            let _ = self.wal.seek(SeekFrom::Start(self.wal_len));
            let _ = self.wal.write_all(torn);
            let _ = self.wal.flush();
            self.dirty_tail = true;
            return Err(e);
        }

        self.wal
            .seek(SeekFrom::Start(self.wal_len))
            .map_err(|e| wal_err("seek for append", &e))?;
        self.wal
            .write_all(&frame)
            .map_err(|e| wal_err("append record", &e))?;
        self.wal_len += frame.len() as u64;
        if self.dirty_tail {
            // Clear stale torn bytes that a shorter successful frame did
            // not overwrite.
            self.wal
                .set_len(self.wal_len)
                .map_err(|e| wal_err("trim dirty tail", &e))?;
            self.dirty_tail = false;
        }
        self.next_seq += 1;

        let synced = match self.sync {
            SyncPolicy::Always => self.sync_now(),
            SyncPolicy::Batch => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= BATCH_SYNC_EVERY {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
        };
        if let Err(e) = synced {
            // The frame is complete on disk but the caller will report the
            // commit as failed — left in place it would be *replayed* on
            // recovery, resurrecting a commit nobody acknowledged. Roll the
            // log back to the pre-append boundary. (Only this frame is
            // dropped: earlier batched-but-unsynced frames were
            // acknowledged under the Batch contract and stay.)
            self.wal_len -= frame.len() as u64;
            self.next_seq -= 1;
            self.wal
                .set_len(self.wal_len)
                .map_err(|te| wal_err("roll back unsynced frame", &te))?;
            return Err(e);
        }
        Ok(())
    }

    /// Forces an fsync of the log.
    pub fn sync_now(&mut self) -> Result<(), StorageError> {
        self.check_fault(FaultOpKind::WalSync, WAL_TABLE)?;
        self.wal
            .sync_data()
            .map_err(|e| wal_err("fsync wal.log", &e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Writes a full snapshot of `db` (plus the current rule-program text)
    /// and truncates the log. The snapshot lands via temp-file + fsync +
    /// atomic rename *before* the log is touched, so a crash at any point
    /// leaves a recoverable store (see module docs on sequence numbers).
    pub fn snapshot(&mut self, db: &Database, rules_text: &str) -> Result<(), StorageError> {
        self.check_fault(FaultOpKind::SnapshotWrite, SNAP_TABLE)?;
        // Unsynced batched appends must be on disk before the log shrinks.
        self.sync_now()?;
        let last_seq = self.next_seq - 1;
        let bytes = encode_snapshot(db, rules_text, last_seq);
        let tmp = self.dir.join(SNAP_TMP);
        let snap = self.dir.join(SNAP_FILE);
        {
            let mut f = File::create(&tmp).map_err(|e| wal_err("create snapshot.tmp", &e))?;
            f.write_all(&bytes)
                .map_err(|e| wal_err("write snapshot", &e))?;
            f.sync_data().map_err(|e| wal_err("fsync snapshot", &e))?;
        }
        std::fs::rename(&tmp, &snap).map_err(|e| wal_err("rename snapshot", &e))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.wal
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| wal_err("truncate wal after snapshot", &e))?;
        self.wal_len = WAL_MAGIC.len() as u64;
        self.dirty_tail = false;
        self.wal
            .seek(SeekFrom::Start(self.wal_len))
            .map_err(|e| wal_err("seek wal.log", &e))?;
        self.wal
            .sync_data()
            .map_err(|e| wal_err("fsync truncated wal", &e))?;
        Ok(())
    }
}

fn wal_err(op: &str, e: &std::io::Error) -> StorageError {
    StorageError::Wal(format!("{op}: {e}"))
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    mix64(h.finish())
}

/// Extracts the frame starting at `pos`, returning `(payload, end)` or
/// `None` if the remaining bytes are incomplete or fail the checksum (the
/// torn-tail cases).
fn next_frame(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[pos..];
    if rest.len() < 12 {
        return None;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let end = 12usize.checked_add(len as usize)?;
    if rest.len() < end {
        return None;
    }
    let payload = &rest[12..end];
    if checksum(payload) != sum {
        return None;
    }
    Some((payload, pos + end))
}

// ---------------------------------------------------------------------------
// Binary codec. Little-endian throughout; strings and vectors are
// u32-length-prefixed; floats are encoded via `to_bits` so the byte image
// round-trips NaN payloads and signed zeros exactly.

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.u64(*i as u64);
            }
            Value::Float(f) => {
                self.u8(3);
                self.u64(f.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }

    fn row(&mut self, row: &Row) {
        self.u32(row.len() as u32);
        for v in row {
            self.value(v);
        }
    }

    fn schema(&mut self, schema: &TableSchema) {
        self.str(&schema.name);
        self.u32(schema.columns.len() as u32);
        for c in &schema.columns {
            self.str(&c.name);
            self.u8(match c.ty {
                ValueType::Bool => 0,
                ValueType::Int => 1,
                ValueType::Float => 2,
                ValueType::Str => 3,
            });
            self.u8(c.nullable as u8);
        }
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StorageError::Wal("truncated record payload".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, StorageError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Wal("invalid UTF-8 in record".into()))
    }

    fn value(&mut self) -> Result<Value, StorageError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.u64()? as i64),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            tag => return Err(StorageError::Wal(format!("unknown value tag {tag}"))),
        })
    }

    fn row(&mut self) -> Result<Row, StorageError> {
        let n = self.u32()? as usize;
        let mut row = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn schema(&mut self) -> Result<TableSchema, StorageError> {
        let name = self.str()?;
        let n = self.u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let cname = self.str()?;
            let ty = match self.u8()? {
                0 => ValueType::Bool,
                1 => ValueType::Int,
                2 => ValueType::Float,
                3 => ValueType::Str,
                tag => return Err(StorageError::Wal(format!("unknown type tag {tag}"))),
            };
            let nullable = self.u8()? != 0;
            columns.push(ColumnDef {
                name: cname,
                ty,
                nullable,
            });
        }
        TableSchema::new(name, columns)
    }
}

/// Record-kind tag (single kind today; the byte keeps the format open).
const TAG_COMMIT: u8 = 1;

fn encode_delta(delta: &CommitDelta) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TAG_COMMIT);
    e.u64(delta.seq);
    e.u32(delta.created.len() as u32);
    for s in &delta.created {
        e.schema(s);
    }
    e.u32(delta.ops.len() as u32);
    for op in &delta.ops {
        match op {
            RowOp::Insert { table, id, row } => {
                e.u8(0);
                e.str(table);
                e.u64(id.0);
                e.row(row);
            }
            RowOp::Update { table, id, row } => {
                e.u8(1);
                e.str(table);
                e.u64(id.0);
                e.row(row);
            }
            RowOp::Delete { table, id } => {
                e.u8(2);
                e.str(table);
                e.u64(id.0);
            }
        }
    }
    match &delta.rules {
        Some(text) => {
            e.u8(1);
            e.str(text);
        }
        None => e.u8(0),
    }
    e.u64(delta.next_tuple_id);
    e.u64(delta.post_digest);
    e.buf
}

fn decode_delta(payload: &[u8]) -> Result<CommitDelta, StorageError> {
    let mut d = Dec::new(payload);
    let tag = d.u8()?;
    if tag != TAG_COMMIT {
        return Err(StorageError::Wal(format!("unknown record tag {tag}")));
    }
    let seq = d.u64()?;
    let n = d.u32()? as usize;
    let mut created = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        created.push(d.schema()?);
    }
    let n = d.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind = d.u8()?;
        let table = d.str()?;
        let id = TupleId(d.u64()?);
        ops.push(match kind {
            0 => RowOp::Insert {
                table,
                id,
                row: d.row()?,
            },
            1 => RowOp::Update {
                table,
                id,
                row: d.row()?,
            },
            2 => RowOp::Delete { table, id },
            tag => return Err(StorageError::Wal(format!("unknown op tag {tag}"))),
        });
    }
    let rules = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        tag => return Err(StorageError::Wal(format!("unknown rules tag {tag}"))),
    };
    let next_tuple_id = d.u64()?;
    let post_digest = d.u64()?;
    if !d.done() {
        return Err(StorageError::Wal("trailing bytes in record".into()));
    }
    Ok(CommitDelta {
        seq,
        created,
        ops,
        rules,
        next_tuple_id,
        post_digest,
    })
}

fn encode_snapshot(db: &Database, rules_text: &str, last_seq: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(SNAP_MAGIC);
    e.u32(1); // format version
    e.u64(last_seq);
    e.u64(db.state_digest());
    e.u64(db.next_tuple_id());
    e.str(rules_text);
    let tables: Vec<_> = db.tables().collect();
    e.u32(tables.len() as u32);
    for t in tables {
        e.schema(t.schema());
        e.u32(t.len() as u32);
        for (id, row) in t.iter() {
            e.u64(id.0);
            e.row(row);
        }
    }
    e.buf
}

/// Loads and verifies `snapshot.bin`, returning `(db, rules_text,
/// last_seq)`, or `None` when the file does not exist.
fn read_snapshot(path: &Path) -> Result<Option<(Database, String, u64)>, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(wal_err("read snapshot.bin", &e)),
    };
    if bytes.len() < SNAP_MAGIC.len() || !bytes.starts_with(SNAP_MAGIC) {
        return Err(StorageError::Wal(format!(
            "{} is not a starling snapshot (bad magic)",
            path.display()
        )));
    }
    let mut d = Dec::new(&bytes[SNAP_MAGIC.len()..]);
    let version = d.u32()?;
    if version != 1 {
        return Err(StorageError::Wal(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let last_seq = d.u64()?;
    let digest = d.u64()?;
    let next_tuple_id = d.u64()?;
    let rules_text = d.str()?;
    let mut db = Database::new();
    let tables = d.u32()? as usize;
    for _ in 0..tables {
        let schema = d.schema()?;
        let name = schema.name.clone();
        db.create_table(schema)?;
        let rows = d.u32()? as usize;
        for _ in 0..rows {
            let id = TupleId(d.u64()?);
            let row = d.row()?;
            db.insert_with_id(&name, id, row)?;
        }
    }
    if !d.done() {
        return Err(StorageError::Wal("trailing bytes in snapshot".into()));
    }
    db.set_next_tuple_id(next_tuple_id);
    let found = db.state_digest();
    if found != digest {
        return Err(StorageError::RecoveryMismatch {
            expected: digest,
            found,
        });
    }
    Ok(Some((db, rules_text, last_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::schema::ColumnDef;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "starling-wal-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("x", ValueType::Int),
                    ColumnDef::nullable("note", ValueType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("t", vec![Value::Int(1), Value::Null]).unwrap();
        db.insert("t", vec![Value::Int(2), Value::from("two")])
            .unwrap();
        db
    }

    fn commit(store: &mut WalStore, base: &Database, post: &Database) {
        let mut delta = CommitDelta::diff(base, post);
        store.append_commit(&mut delta).unwrap();
    }

    #[test]
    fn diff_and_apply_roundtrip() {
        let base = sample_db();
        let mut post = base.clone();
        post.create_table(
            TableSchema::new("u", vec![ColumnDef::new("y", ValueType::Float)]).unwrap(),
        )
        .unwrap();
        post.insert("u", vec![Value::Float(1.5)]).unwrap();
        post.insert("t", vec![Value::Int(3), Value::Null]).unwrap();
        let ids = post.table("t").unwrap().ids();
        let (first, second) = (ids[0], ids[1]);
        post.update("t", first, vec![Value::Int(10), Value::Null])
            .unwrap();
        post.delete("t", second).unwrap();

        let delta = CommitDelta::diff(&base, &post);
        assert_eq!(delta.created.len(), 1);
        assert_eq!(delta.ops.len(), 4);
        let mut rebuilt = base.clone();
        delta.apply(&mut rebuilt).unwrap();
        assert_eq!(rebuilt, post);

        // Codec round-trip preserves the delta exactly.
        let decoded = decode_delta(&encode_delta(&delta)).unwrap();
        assert_eq!(decoded, delta);
    }

    #[test]
    fn empty_store_roundtrip() {
        let dir = tmpdir("empty");
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert!(rec.is_empty());
        assert_eq!(rec.db, Database::new());
        // Re-opening an initialized-but-empty store is still empty.
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert!(rec.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_replay_and_rules_replace() {
        let dir = tmpdir("replay");
        let base = Database::new();
        let mid = sample_db();
        {
            let (mut store, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
            assert!(rec.is_empty());
            let mut d1 = CommitDelta::diff(&base, &mid);
            d1.rules = Some("create rule r ...;".into());
            store.append_commit(&mut d1).unwrap();
            let mut post = mid.clone();
            post.insert("t", vec![Value::Int(3), Value::Null]).unwrap();
            let mut d2 = CommitDelta::diff(&mid, &post);
            d2.rules = Some("create rule r2 ...;".into());
            store.append_commit(&mut d2).unwrap();
        }
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.records_applied, 2);
        assert_eq!(rec.last_seq, 2);
        // Replace semantics: only the latest rules text survives.
        assert_eq!(rec.rules_text, "create rule r2 ...;");
        assert_eq!(rec.db.total_rows(), 3);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let base = Database::new();
        let mid = sample_db();
        {
            let (mut store, _) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
            commit(&mut store, &base, &mid);
        }
        let wal_path = dir.join(WAL_FILE);
        let clean = std::fs::read(&wal_path).unwrap();

        // Garbage appended past the last record is discarded.
        let mut torn = clean.clone();
        torn.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
        std::fs::write(&wal_path, &torn).unwrap();
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, mid);
        assert_eq!(rec.truncated_bytes, 5);
        assert_eq!(std::fs::read(&wal_path).unwrap(), clean);

        // A record cut mid-payload is discarded entirely.
        std::fs::write(&wal_path, &clean[..clean.len() - 3]).unwrap();
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, Database::new());
        assert_eq!(rec.last_seq, 0);

        // A corrupted byte inside the payload fails the checksum.
        let mut corrupt = clean.clone();
        let mid_byte = clean.len() - 4;
        corrupt[mid_byte] ^= 0xff;
        std::fs::write(&wal_path, &corrupt).unwrap();
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, Database::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_and_skips_covered_records() {
        let dir = tmpdir("snap");
        let base = Database::new();
        let mid = sample_db();
        let mut post = mid.clone();
        post.insert("t", vec![Value::Int(3), Value::from("x")])
            .unwrap();
        {
            let (mut store, _) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
            commit(&mut store, &base, &mid);
            let pre_snapshot_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
            store.snapshot(&mid, "rules v1").unwrap();
            assert_eq!(
                std::fs::read(dir.join(WAL_FILE)).unwrap().len(),
                WAL_MAGIC.len()
            );
            commit(&mut store, &mid, &post);
            // Simulate a crash *between* snapshot rename and wal truncation:
            // splice the pre-snapshot records back in front of the tail.
            let tail = std::fs::read(dir.join(WAL_FILE)).unwrap();
            let mut stale = pre_snapshot_wal;
            stale.extend_from_slice(&tail[WAL_MAGIC.len()..]);
            std::fs::write(dir.join(WAL_FILE), &stale).unwrap();
        }
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.rules_text, "rules v1");
        // The stale record (seq 1) is skipped, the tail (seq 2) applied.
        assert_eq!(rec.records_applied, 1);
        assert_eq!(rec.last_seq, 2);
        assert_eq!(rec.db, post);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_wal_append_leaves_recoverable_torn_frame() {
        let dir = tmpdir("fault");
        let base = Database::new();
        let mid = sample_db();
        let mut post = mid.clone();
        post.insert("t", vec![Value::Int(3), Value::Null]).unwrap();
        {
            let (mut store, _) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
            store.set_fault_state(Some(FaultState::new(FaultPlan::single(
                FaultSpec::nth(1).on_kind(FaultOpKind::WalAppend),
            ))));
            commit(&mut store, &base, &mid);
            let err = store
                .append_commit(&mut CommitDelta::diff(&mid, &post))
                .unwrap_err();
            assert!(err.is_injected());
            // The torn half-frame is on disk...
            assert!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() > store.wal_len);
            // ...and the one-shot fault lets the retry overwrite it.
            commit(&mut store, &mid, &post);
        }
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, post);
        assert_eq!(rec.last_seq, 2);

        // Crash right after the torn write (no retry): recovery truncates.
        let dir2 = tmpdir("fault2");
        {
            let (mut store, _) = WalStore::open(&dir2, SyncPolicy::Always).unwrap();
            store.set_fault_state(Some(FaultState::new(FaultPlan::single(
                FaultSpec::nth(1).on_kind(FaultOpKind::WalAppend),
            ))));
            commit(&mut store, &base, &mid);
            assert!(store
                .append_commit(&mut CommitDelta::diff(&mid, &post))
                .is_err());
        }
        let (_, rec) = WalStore::open(&dir2, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, mid);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn injected_sync_and_snapshot_faults_fail_cleanly() {
        let dir = tmpdir("sync");
        let base = Database::new();
        let mid = sample_db();
        let (mut store, _) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        store.set_fault_state(Some(FaultState::new(
            FaultPlan::new()
                .with(FaultSpec::nth(0).on_kind(FaultOpKind::WalSync))
                .with(FaultSpec::nth(0).on_kind(FaultOpKind::SnapshotWrite)),
        )));
        let err = store
            .append_commit(&mut CommitDelta::diff(&base, &mid))
            .unwrap_err();
        assert!(err.is_injected());
        let err = store.snapshot(&mid, "").unwrap_err();
        assert!(err.is_injected());
        assert!(!dir.join(SNAP_FILE).exists());
        // The fully-appended-but-unsynced frame was rolled back: recovery
        // must NOT resurrect the unacknowledged commit.
        drop(store);
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(rec.db, base);
        assert_eq!(rec.last_seq, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_mismatch_is_detected() {
        let dir = tmpdir("mismatch");
        let base = Database::new();
        let mid = sample_db();
        {
            let (mut store, _) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
            let mut delta = CommitDelta::diff(&base, &mid);
            delta.post_digest ^= 1; // forged digest, checksum still valid
            let payload = encode_delta(&{
                let mut d = delta.clone();
                d.seq = 1;
                d
            });
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&checksum(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            store.wal.write_all(&frame).unwrap();
            store.wal.sync_data().unwrap();
        }
        let err = WalStore::open(&dir, SyncPolicy::Always).unwrap_err();
        assert!(matches!(err, StorageError::RecoveryMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_sync_policy_counts_appends() {
        let dir = tmpdir("batch");
        let (mut store, _) = WalStore::open(&dir, SyncPolicy::Batch).unwrap();
        let mut db = Database::new();
        let mut prev = db.clone();
        db.create_table(TableSchema::new("t", vec![ColumnDef::new("x", ValueType::Int)]).unwrap())
            .unwrap();
        for i in 0..3 {
            db.insert("t", vec![Value::Int(i)]).unwrap();
            commit(&mut store, &prev, &db);
            prev = db.clone();
        }
        assert_eq!(store.appends_since_sync, 3);
        store.sync_now().unwrap();
        assert_eq!(store.appends_since_sync, 0);
        drop(store);
        let (_, rec) = WalStore::open(&dir, SyncPolicy::Batch).unwrap();
        assert_eq!(rec.db, db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"NOTAWAL!").unwrap();
        assert!(matches!(
            WalStore::open(&dir, SyncPolicy::Always),
            Err(StorageError::Wal(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policy_names() {
        assert_eq!(SyncPolicy::from_name("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::from_name("batch"), Some(SyncPolicy::Batch));
        assert_eq!(SyncPolicy::from_name("nope"), None);
        assert_eq!(SyncPolicy::Batch.name(), "batch");
    }
}
