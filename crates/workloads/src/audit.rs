//! Observable audit rules — the Section 8 workload.
//!
//! Auditing rules *retrieve* data while rule processing runs (observable
//! `SELECT` actions) and a guard can roll the transaction back. As written,
//! the two audit rules are unordered, so the audit stream's order depends
//! on scheduling: the rule set is confluent but **not** observably
//! deterministic — the paper's orthogonality example. Ordering the audit
//! rules (see [`RESOLUTIONS`]) restores determinism.

use crate::Workload;

/// The audit workload.
pub fn workload() -> Workload {
    Workload {
        name: "audit",
        setup: SETUP.to_owned(),
        rules: RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

const SETUP: &str = "
create table account (aid int, balance int);
create table transfer (tid int, src int, dst int, amount int);

insert into account values (1, 1000);
insert into account values (2, 50);
";

const RULES: &str = "
-- Audit: report accounts drained below the floor by the new transfers.
create rule audit_low on transfer
when inserted
then select aid, balance from account where balance < 100
end;

-- Audit: report large transfers as they arrive.
create rule audit_large on transfer
when inserted
then select tid, amount from inserted where amount > 500
end;

-- Apply the transfer amounts.
create rule apply_transfer on transfer
when inserted
then update account set balance = balance -
       (select sum(amount) from transfer where src = account.aid
          and tid in (select tid from inserted))
     where aid in (select src from inserted)
precedes audit_low, audit_large
end;

-- Guard: overdrafts abort.
create rule guard_overdraft on account
when updated(balance)
if exists (select * from account where balance < 0)
then rollback
end;
";

const USER: &str = "
insert into transfer values (1, 1, 2, 600);
";

/// Ordering that makes the audit stream deterministic.
pub const RESOLUTIONS: &str = "
-- audit_low precedes audit_large  (apply by re-defining audit_low), or via
-- the interactive session's add_ordering(\"audit_low\", \"audit_large\").
";

#[cfg(test)]
mod tests {
    use starling_engine::{explore, ExploreConfig};

    use super::*;

    #[test]
    fn oracle_shows_observable_nondeterminism() {
        let w = workload();
        let (db, rs) = w.compile().unwrap();
        let cfg = ExploreConfig::default();
        let g = explore(&rs, &db, &w.user_actions().unwrap(), &cfg).unwrap();
        assert_eq!(g.terminates(), Some(true));
        // Confluent: the final balances do not depend on audit order.
        assert_eq!(g.confluent(), Some(true));
        // But the audit stream does.
        assert_eq!(g.observably_deterministic(&cfg), Some(false));
        let streams = g.observable_streams(&cfg).unwrap();
        assert!(streams.len() >= 2, "streams: {}", streams.len());
    }
}
