//! Chase-style linear existential rules (ROADMAP item 5(b)), after the
//! termination studies of Calautti, Gottlob & Pieris on linear
//! tuple-generating dependencies.
//!
//! A *linear TGD* `r(x) → ∃y s(x, y)` has a single body atom; the chase
//! repairs a violated dependency by inserting the head atom with a fresh
//! labeled null for each existential variable. Starburst rules encode a
//! chase step directly — one rule per TGD, triggered by insertions into
//! the body relation — and labeled nulls are simulated by a `fresh`
//! counter table bumped before each head insertion. This imports the
//! chase's termination and confluence regimes into the analyzers:
//!
//! * [`terminating`] — a weakly acyclic dependency set: the existential
//!   edge `person → parent` is never fed back into `person`, so the chase
//!   (and rule processing) terminates on every database.
//! * [`nonterminating`] — closes that loop with the full TGD
//!   `parent(c, p) → person(p)`: the position cycle through an existential
//!   edge makes the chase generate fresh values forever, the classic
//!   non-weakly-acyclic shape. The triggering-graph analyzer must flag the
//!   cycle, and the oracle finds unbounded growth under any budget.
//! * [`order_sensitive`] — two existential TGDs drawing from the *same*
//!   fresh-label supply. Chase results are unique only up to null
//!   renaming; under concrete label arithmetic that renaming becomes an
//!   observable divergence — which TGD fires first decides which labels
//!   each head receives — so the rule program is genuinely non-confluent
//!   and a prime target for `starling explain`.

use crate::Workload;

/// Weakly acyclic linear chase: terminates, and the analyzer can see it.
pub fn terminating() -> Workload {
    Workload {
        name: "chase_terminating",
        setup: SETUP.to_owned(),
        rules: TERMINATING_RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

/// Non-weakly-acyclic linear chase: the existential cycle
/// `person → parent → person` generates fresh labels forever.
pub fn nonterminating() -> Workload {
    Workload {
        name: "chase_nonterminating",
        setup: SETUP.to_owned(),
        rules: format!("{TERMINATING_RULES}{FEEDBACK_RULE}"),
        user_transition: USER.to_owned(),
    }
}

/// Two unordered existential TGDs sharing the fresh-label supply: the
/// chase's "unique up to null renaming" caveat made concrete as a real
/// confluence violation.
pub fn order_sensitive() -> Workload {
    Workload {
        name: "chase_order_sensitive",
        setup: SETUP.to_owned(),
        rules: ORDER_SENSITIVE_RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

const SETUP: &str = "
create table person (pid int);
create table parent (cid int, pid int);
create table mentor (mid int, pid int);
create table ancestor (cid int, pid int);
create table fresh (next int);

insert into fresh values (1000);
insert into person values (1);
";

/// `person(x) → ∃y parent(x, y)` plus the full (existential-free) linear
/// TGD `parent(c, p) → ancestor(c, p)`: a two-step cascade whose position
/// graph is acyclic.
const TERMINATING_RULES: &str = "
-- Linear existential TGD: every person has a parent with a fresh label.
create rule tgd_parent on person
when inserted
then update fresh set next = next + 1;
     insert into parent select i.pid, f.next from inserted i, fresh f
end;

-- Linear full TGD: parenthood is ancestry (plain propagation, no nulls).
create rule tgd_ancestor on parent
when inserted
then insert into ancestor select cid, pid from inserted
end;
";

/// The feedback TGD `parent(c, p) → person(p)`: generated parents are
/// persons themselves, so `tgd_parent` re-fires on chase-invented values —
/// the non-weakly-acyclic existential cycle.
const FEEDBACK_RULE: &str = "
create rule tgd_person on parent
when inserted
then insert into person select pid from inserted
end;
";

/// `person(x) → ∃y parent(x, y)` and `person(x) → ∃z mentor(x, z)`,
/// unordered, both bumping the shared `fresh` counter.
const ORDER_SENSITIVE_RULES: &str = "
create rule tgd_parent on person
when inserted
then update fresh set next = next + 1;
     insert into parent select i.pid, f.next from inserted i, fresh f
end;

create rule tgd_mentor on person
when inserted
then update fresh set next = next + 1;
     insert into mentor select i.pid, f.next from inserted i, fresh f
end;
";

const USER: &str = "
insert into person values (2);
";

#[cfg(test)]
mod tests {
    use starling_engine::{explore, Budget, Verdict};
    use starling_provenance::explain_divergence;

    use super::*;

    fn explored(w: &Workload, cfg: &Budget) -> starling_engine::ExecGraph {
        let (db, rules) = w.compile().unwrap();
        explore(&rules, &db, &w.user_actions().unwrap(), cfg).unwrap()
    }

    #[test]
    fn weakly_acyclic_chase_terminates_confluently() {
        let g = explored(&terminating(), &Budget::default());
        assert_eq!(g.termination_verdict(), Verdict::Holds);
        assert_eq!(g.confluence_verdict(), Verdict::Holds);
    }

    #[test]
    fn existential_cycle_exhausts_any_budget() {
        let cfg = Budget::default().with_max_states(200).with_max_rows(500);
        let g = explored(&nonterminating(), &cfg);
        assert!(g.truncated(), "the chase generates fresh values forever");
        // The static side agrees: the triggering graph has a cycle no
        // special case discharges (fresh values grow without bound).
        let w = nonterminating();
        let (db, rules) = w.compile().unwrap();
        let ctx = starling_analysis::AnalysisContext::from_ruleset(
            &rules,
            starling_analysis::Certifications::new(),
        );
        let report = starling_analysis::AnalysisReport::run(&ctx, &[]);
        assert!(!report.termination.is_guaranteed());
        drop(db);
    }

    #[test]
    fn shared_null_supply_diverges_with_witness() {
        let w = order_sensitive();
        let (db, rules) = w.compile().unwrap();
        let cfg = Budget::default();
        let ex = explain_divergence(
            &rules,
            &db,
            &w.user_actions().unwrap(),
            &cfg,
            Default::default(),
        )
        .unwrap();
        let witness = ex.witness.expect("label assignment depends on order");
        assert!(witness.replay_verified);
        assert_ne!(witness.left_digest, witness.right_digest);
    }
}
