//! Condition-heavy rule programs for oracle benchmarking.
//!
//! The [`stress`](crate::stress) workload measures raw state throughput
//! with trivially-true rules; these workloads measure the *other* oracle
//! cost center: SQL condition evaluation. Every rule carries a condition
//! that scans a [`BIG_ROWS`]-row reference table on each consideration, so
//! exploration time is dominated by condition evaluation rather than state
//! bookkeeping — exactly the compile-once/execute-many workload the query
//! plan layer targets.
//!
//! Two flavors:
//!
//! * [`join_rules`] — conditions of the shape
//!   `exists (select * from inserted i, big b where b.k = i.k and ...)`:
//!   an equality join between the (tiny) transition table and the big
//!   reference table. A nested-loop interpreter pays `|big|` row clones
//!   per evaluation; a hash join probes once.
//! * [`filter_rules`] — single-table conditions
//!   (`exists (select * from big where v > ... and k > ...)`, plus an
//!   uncorrelated `IN (select ...)`): predicates that either match only at
//!   the very end of the scan or never match, forcing full scans through
//!   the pushed-down filter.
//!
//! Both graphs are pure rule-interleaving lattices (actions write disjoint
//! side tables that trigger nothing), so the verdicts are pinned:
//! terminates, confluent, observably deterministic.

use starling_engine::RuleSet;
use starling_sql::ast::{Action, Statement};
use starling_sql::{parse_script, parse_statement};
use starling_storage::{Catalog, ColumnDef, Database, TableSchema, Value, ValueType};

/// Rows in the `big` reference table. Sized so condition evaluation
/// dominates per-exploration cost even on the compiled row-plan path
/// (at a few hundred rows the graph bookkeeping drowns the scans the
/// family exists to measure); must stay `≡ 2 (mod 10)` so the inserted
/// key's reference `v` is 9 and the rule guards keep their pinned truth
/// values.
pub const BIG_ROWS: i64 = 2_002;
/// Number of interleaving rules per flavor.
pub const FAN: usize = 3;

/// The catalog: `evt(k, v)` (the rules' table), `big(k, v)` (reference
/// data), `seeds(x)` (for `IN`-subquery conditions), and one side table
/// `s{i}(x)` per fan rule.
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["evt", "big"] {
        cat.add_table(
            TableSchema::new(
                name,
                vec![
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    }
    cat.add_table(TableSchema::new("seeds", vec![ColumnDef::new("x", ValueType::Int)]).unwrap())
        .unwrap();
    for i in 0..FAN {
        cat.add_table(
            TableSchema::new(format!("s{i}"), vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
        )
        .unwrap();
    }
    cat
}

/// A database over the catalog with `big` fully populated: row `k` carries
/// `v = k % 10`, so value predicates select a known fraction of the table.
pub fn database() -> Database {
    let mut db = Database::new();
    for schema in catalog().tables() {
        db.create_table(schema.clone()).unwrap();
    }
    for k in 0..BIG_ROWS {
        db.insert("big", vec![Value::Int(k), Value::Int(k % 10)])
            .unwrap();
    }
    for x in [3, 400, 507] {
        db.insert("seeds", vec![Value::Int(x)]).unwrap();
    }
    db
}

/// The join-flavored rule script (see module docs).
pub fn join_rules_script() -> String {
    let mut s = String::new();
    // Each rule joins the transition table against `big` on `k`. The
    // matching `big` rows sit near the end of the scan (the user inserts a
    // high `k`), so a nested loop pays for most of the table every time.
    for i in 0..FAN {
        s.push_str(&format!(
            "create rule j{i} on evt when inserted \
             if exists (select * from inserted i, big b \
                        where b.k = i.k and b.v > {i}) \
             then insert into s{i} values ({i}) end;\n"
        ));
    }
    s
}

/// The filter-flavored rule script (see module docs).
pub fn filter_rules_script() -> String {
    let last = BIG_ROWS - 5;
    format!(
        "create rule f0 on evt when inserted \
         if exists (select * from big where v > 8 and k > {last}) \
         then insert into s0 values (0) end;\n\
         create rule f1 on evt when inserted \
         if exists (select * from big where v > 99) \
         then insert into s1 values (1) end;\n\
         create rule f2 on evt when inserted \
         if exists (select * from big where k in (select x from seeds) and v >= 0) \
         then insert into s2 values (2) end;\n"
    )
}

fn compile_script(script: &str) -> RuleSet {
    let defs: Vec<_> = parse_script(script)
        .expect("cond_stress script parses")
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    RuleSet::compile(&defs, &catalog()).expect("cond_stress script compiles")
}

/// Compiles the join-flavored rule set.
pub fn join_rules() -> RuleSet {
    compile_script(&join_rules_script())
}

/// Compiles the filter-flavored rule set.
pub fn filter_rules() -> RuleSet {
    compile_script(&filter_rules_script())
}

/// The user transition: one insert into `evt` with a `k` that joins near
/// the end of `big`'s scan order.
pub fn user_actions() -> Vec<Action> {
    let k = BIG_ROWS - 3;
    let Statement::Dml(a) = parse_statement(&format!("insert into evt values ({k}, 9)")).unwrap()
    else {
        unreachable!()
    };
    vec![a]
}

#[cfg(test)]
mod tests {
    use starling_engine::{explore, ExploreConfig};

    use super::*;

    /// Both flavors terminate, are confluent, and have pinned graph sizes —
    /// the determinism anchor for the condition-heavy bench cases.
    #[test]
    fn cond_stress_graphs_pinned() {
        let cfg = ExploreConfig::default()
            .with_max_states(5_000)
            .with_max_paths(10_000);
        for (name, rules, fired_rules) in [
            ("join", join_rules(), FAN),
            // f1's condition (`v > 99`) is never true; f0 and f2 fire.
            ("filter", filter_rules(), 2),
        ] {
            let g = explore(&rules, &database(), &user_actions(), &cfg).unwrap();
            assert!(!g.truncated(), "{name} truncated");
            assert_eq!(g.terminates(), Some(true), "{name}");
            assert_eq!(g.confluent(), Some(true), "{name}");
            assert_eq!(g.final_db_digests().len(), 1, "{name}");
            // All rules' actions are inserts into distinct side tables, so
            // the final state pins how many conditions evaluated true.
            let (_, db) = g.final_dbs.first().expect("one final state");
            let fired = (0..FAN)
                .filter(|i| db.table(&format!("s{i}")).unwrap().len() == 1)
                .count();
            assert_eq!(fired, fired_rules, "{name}");
        }
    }
}
