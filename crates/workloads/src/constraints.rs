//! Integrity-constraint maintenance rules — the motivating workload of the
//! paper's introduction and of \[CW90\]/\[WF90\]: referential integrity,
//! domain constraints, and derived-data (materialized aggregate)
//! maintenance over a classic employee/department schema.
//!
//! As written, the rule set is **deliberately not confluent**: the
//! salary-cap rule and the totals-maintenance rule are unordered and do not
//! commute (the cap changes what the total sees). This is the Section 6.4
//! case study — "In most cases the rule sets were initially found to be
//! non-confluent" — and the interactive loop orders or certifies its way to
//! a confluent set (experiment E8).

use crate::Workload;

/// The constraint-maintenance workload.
pub fn workload() -> Workload {
    Workload {
        name: "constraints",
        setup: SETUP.to_owned(),
        rules: RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

const SETUP: &str = "
create table dept (dno int, budget int, total_sal int null);
create table emp (eid int, sal int, dno int);

insert into dept values (1, 10000, 300);
insert into dept values (2, 20000, 0);
insert into emp values (1, 100, 1);
insert into emp values (2, 200, 1);
";

const RULES: &str = "
-- Referential integrity: inserting an employee into a missing department
-- aborts the transaction.
create rule ri_emp_dept on emp
when inserted, updated(dno)
if exists (select * from emp where dno not in (select dno from dept))
then rollback
end;

-- Referential integrity: deleting a department cascades to its employees.
create rule ri_dept_cascade on dept
when deleted
then delete from emp where dno in (select dno from deleted)
end;

-- Domain constraint: salaries are capped at 500.
create rule cap_salary on emp
when inserted, updated(sal)
if exists (select * from emp where sal > 500)
then update emp set sal = 500 where sal > 500
end;

-- Derived data: dept.total_sal is the sum of its employees' salaries.
create rule maintain_totals on emp
when inserted, deleted, updated(sal, dno)
then update dept set total_sal =
       (select sum(sal) from emp where dno = dept.dno)
end;
";

const USER: &str = "
insert into emp values (3, 700, 2);
";

/// The certifications / orderings that make the rule set analyzable, as a
/// script (the outcome of the Section 6.4 interactive loop).
pub const RESOLUTIONS: &str = "
declare terminates cap_salary 'one application brings every salary to the cap';
declare terminates maintain_totals 'recomputation is idempotent';
";

#[cfg(test)]
mod tests {
    use starling_engine::{FirstEligible, Outcome, Processor};
    use starling_storage::Value;

    use super::*;

    fn run_user(user: &str) -> (starling_engine::ExecState, Outcome) {
        let w = workload();
        let (db, rs) = w.compile().unwrap();
        let snapshot = db.clone();
        let mut working = db.clone();
        let actions: Vec<_> = starling_sql::parse_script(user)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                starling_sql::ast::Statement::Dml(a) => Some(a),
                _ => None,
            })
            .collect();
        let ops = starling_engine::exec_graph::apply_user_actions(&mut working, &actions).unwrap();
        let mut st = starling_engine::ExecState::new(working, rs.len(), &ops);
        let res = Processor::new(&rs)
            .with_limit(500)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        (st, res.outcome)
    }

    #[test]
    fn salary_cap_and_totals_maintained() {
        let (st, outcome) = run_user("insert into emp values (3, 700, 2)");
        assert_eq!(outcome, Outcome::Quiescent);
        let emp = st.db.table("emp").unwrap();
        let sal: Vec<&Value> = emp.iter().map(|(_, r)| &r[1]).collect();
        assert!(sal.contains(&&Value::Int(500)));
        // dept 2's total reflects the capped salary.
        let dept = st.db.table("dept").unwrap();
        let totals: Vec<(i64, Value)> = dept
            .iter()
            .map(|(_, r)| {
                let Value::Int(d) = r[0] else { panic!() };
                (d, r[2].clone())
            })
            .collect();
        assert!(totals.contains(&(2, Value::Int(500))), "{totals:?}");
        assert!(totals.contains(&(1, Value::Int(300))), "{totals:?}");
    }

    #[test]
    fn referential_violation_rolls_back() {
        let (st, outcome) = run_user("insert into emp values (9, 100, 42)");
        assert_eq!(outcome, Outcome::RolledBack);
        assert_eq!(st.db.table("emp").unwrap().len(), 2);
    }

    #[test]
    fn dept_delete_cascades() {
        let (st, outcome) = run_user("delete from dept where dno = 1");
        assert_eq!(outcome, Outcome::Quiescent);
        assert!(st.db.table("emp").unwrap().is_empty());
    }
}
