//! A curated corpus of small rule sets with known ground truth, shared by
//! integration tests, experiments, and benchmarks.

use starling_engine::RuleSet;
use starling_sql::ast::Statement;
use starling_sql::parse_script;
use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

/// Expected verdicts for a corpus entry (static-analysis ground truth,
/// established by hand and cross-checked by the oracle where applicable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expectations {
    /// Termination guaranteed (without user certificates)?
    pub terminates: bool,
    /// Confluence Requirement holds?
    pub confluence_requirement: bool,
    /// Observable determinism guaranteed?
    pub observable: bool,
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Name used in reports.
    pub name: &'static str,
    /// The rule script (tables `t`, `u`, `v`, `w` with column `x` exist).
    pub rules: &'static str,
    /// Expected analysis verdicts.
    pub expect: Expectations,
}

impl CorpusEntry {
    /// The standard corpus catalog: tables `t`, `u`, `v`, `w`, each with a
    /// single integer column `x`.
    pub fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v", "w"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        cat
    }

    /// Parses and compiles the entry.
    pub fn compile(&self) -> RuleSet {
        let cat = Self::catalog();
        let defs: Vec<_> = parse_script(self.rules)
            .expect("corpus entry parses")
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        RuleSet::compile(&defs, &cat).expect("corpus entry compiles")
    }
}

/// The corpus.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "independent",
            rules: "create rule a on t when inserted then insert into u values (1) end;
                    create rule b on v when inserted then insert into w values (1) end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "cascade_ordered",
            rules: "create rule a on t when inserted then insert into u values (1) precedes b end;
                    create rule b on u when inserted then insert into v values (1) end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "cascade_unordered",
            rules: "create rule a on t when inserted then insert into u values (1) end;
                    create rule b on u when inserted then insert into v values (1) end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: false,
                observable: true,
            },
        },
        CorpusEntry {
            name: "ping_pong",
            rules: "create rule p on t when inserted then insert into u values (1) end;
                    create rule q on u when inserted then insert into t values (1) end;",
            expect: Expectations {
                terminates: false,
                confluence_requirement: false,
                observable: true,
            },
        },
        CorpusEntry {
            name: "self_loop",
            rules: "create rule s on t when inserted then insert into t values (1) end;",
            expect: Expectations {
                terminates: false,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "unordered_writers",
            rules: "create rule a on t when inserted then update u set x = 1 end;
                    create rule b on t when inserted then update u set x = 2 end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: false,
                observable: true,
            },
        },
        CorpusEntry {
            name: "ordered_writers",
            rules: "create rule a on t when inserted then update u set x = 1 precedes b end;
                    create rule b on t when inserted then update u set x = 2 end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "unordered_observables",
            rules: "create rule a on t when inserted then select x from u end;
                    create rule b on t when inserted then select x from v end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: false,
            },
        },
        CorpusEntry {
            name: "ordered_observables",
            rules: "create rule a on t when inserted then select x from u precedes b end;
                    create rule b on t when inserted then select x from v end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "bounded_increment",
            rules: "create rule inc on t when updated(x) then \
                      update t set x = x + 1 where x < 10 end;",
            expect: Expectations {
                // Terminates only via the monotone auto-certificate; the
                // bare graph has a self-loop.
                terminates: false,
                confluence_requirement: true,
                observable: true,
            },
        },
        CorpusEntry {
            name: "delete_cascade_cycle",
            rules: "create rule da on t when deleted then delete from u end;
                    create rule db on u when deleted then delete from t end;",
            expect: Expectations {
                // Cycle in the graph; discharged by delete-only
                // auto-certificates, but "terminates without certificates"
                // is false.
                terminates: false,
                confluence_requirement: false,
                observable: true,
            },
        },
        CorpusEntry {
            name: "rollback_guard",
            rules: "create rule g on t when inserted \
                      if exists (select * from inserted where x < 0) \
                      then rollback end;",
            expect: Expectations {
                terminates: true,
                confluence_requirement: true,
                observable: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use starling_analysis::certifications::Certifications;
    use starling_analysis::confluence::analyze_confluence;
    use starling_analysis::context::AnalysisContext;
    use starling_analysis::observable::analyze_observable_determinism;
    use starling_analysis::termination::{analyze_termination, TerminationVerdict};

    use super::*;

    #[test]
    fn corpus_matches_expectations() {
        for entry in corpus() {
            let rs = entry.compile();
            let ctx = AnalysisContext::from_ruleset(&rs, Certifications::new());
            let term = analyze_termination(&ctx);
            assert_eq!(
                term.verdict == TerminationVerdict::Guaranteed,
                entry.expect.terminates,
                "{}: termination",
                entry.name
            );
            let conf = analyze_confluence(&ctx);
            assert_eq!(
                conf.requirement_holds(),
                entry.expect.confluence_requirement,
                "{}: confluence requirement",
                entry.name
            );
            let obs = analyze_observable_determinism(&ctx);
            assert_eq!(
                obs.is_guaranteed(),
                entry.expect.observable,
                "{}: observable determinism",
                entry.name
            );
        }
    }

    #[test]
    fn auto_certificates_fire_where_designed() {
        for (name, expect_discharged) in
            [("bounded_increment", true), ("delete_cascade_cycle", true)]
        {
            let entry = corpus().into_iter().find(|e| e.name == name).unwrap();
            let rs = entry.compile();
            let ctx = AnalysisContext::from_ruleset(&rs, Certifications::new());
            let term = analyze_termination(&ctx);
            assert_eq!(
                term.verdict == TerminationVerdict::GuaranteedWithCertificates,
                expect_discharged,
                "{name}"
            );
        }
    }
}
