//! Fault-sweep harness: exhaustive atomicity checking under injected
//! storage faults.
//!
//! For a generated workload, the sweep first runs the user transition with
//! no faults to learn `N`, the number of mutating storage operations the
//! transaction performs (user DML plus every rule action). It then replays
//! the transaction `N + 1` times, injecting a one-shot storage fault before
//! op `k` for each `k = 0..N` (the extra run at `k = N` is a control whose
//! fault never fires), and checks the paper's §2 atomicity promise at every
//! index:
//!
//! * a run whose fault fired must end **aborted** with the database equal
//!   to the pre-transaction snapshot — the user's own statements included;
//! * a run whose fault never fired must be **indistinguishable from the
//!   fault-free run** (same outcome, same final database);
//! * nothing in between: a database that is neither the snapshot nor the
//!   committed state is a crash-consistency violation.
//!
//! Violations are collected, not panicked, so property tests can report
//! every broken index of a sweep at once.

use starling_engine::{FirstEligible, Outcome, Session};
use starling_sql::ast::Statement;
use starling_storage::{FaultPlan, FaultSpec};

use crate::random::GeneratedWorkload;

/// Result of one fault sweep over a workload's user transition.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Mutating storage ops in the fault-free run (the sweep's `N`).
    pub mutating_ops: u64,
    /// Outcome of the fault-free run (`Quiescent`, or `LimitExceeded` for
    /// non-terminating rule sets — both are legal reference points).
    pub clean_outcome: Outcome,
    /// Runs that aborted back to the snapshot (expected: one per `k < N`).
    pub aborted: usize,
    /// Runs indistinguishable from the fault-free run (expected: the
    /// control run at `k = N`).
    pub committed: usize,
    /// Human-readable atomicity violations. Empty iff the property holds.
    pub violations: Vec<String>,
}

impl SweepReport {
    /// True iff every swept index was snapshot-or-committed.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// DDL + deterministic seed rows for the workload's catalog, as a script.
/// (Seeds go through the session like everything else, so the sweep
/// exercises exactly the code paths a user would.)
fn setup_script(w: &GeneratedWorkload) -> String {
    let mut s = String::new();
    for t in w.catalog.tables() {
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|c| format!("{} int", c.name))
            .collect();
        s.push_str(&format!("create table {} ({});\n", t.name, cols.join(", ")));
    }
    for t in w.catalog.tables() {
        for row in 0..w.config.rows_per_table {
            let vals: Vec<String> = (0..t.arity())
                .map(|c| ((row + c) % 10).to_string())
                .collect();
            s.push_str(&format!(
                "insert into {} values ({});\n",
                t.name,
                vals.join(", ")
            ));
        }
    }
    s
}

/// A session with the workload's tables and seed data committed and its
/// rules defined, poised before the user transition.
fn build_session(w: &GeneratedWorkload, limit: usize) -> Session {
    let mut s = Session::new();
    s.max_considerations = limit;
    s.execute_script(&setup_script(w)).expect("setup script");
    // No rules exist yet, so the seed commit quiesces trivially.
    let seeded = s.commit(&mut FirstEligible).expect("seed commit");
    assert_eq!(
        seeded.outcome,
        Outcome::Quiescent,
        "seed commit is rule-free"
    );
    s.execute_script(&w.script()).expect("rule definitions");
    s
}

/// Executes the user transition (salted as in
/// [`GeneratedWorkload::user_transition`]) and commits. Errors surface from
/// the statement that hit them; the session has already rolled back.
fn drive(
    s: &mut Session,
    w: &GeneratedWorkload,
    salt: u64,
) -> Result<Outcome, starling_engine::EngineError> {
    for a in w.user_transition(salt) {
        s.execute(&Statement::Dml(a))?;
    }
    Ok(s.commit(&mut FirstEligible)?.outcome)
}

/// Sweeps one workload: injects a storage fault at every mutating-op index
/// of the transaction and checks snapshot-or-committed at each.
///
/// `limit` bounds rule processing per run (non-terminating rule sets stop
/// at [`Outcome::LimitExceeded`], which is still a deterministic reference
/// state for the unfired-fault runs).
pub fn fault_sweep(w: &GeneratedWorkload, salt: u64, limit: usize) -> SweepReport {
    // Reference run: an empty fault plan fires nothing but counts ops.
    let mut clean = build_session(w, limit);
    let pre_digest = clean.db().state_digest();
    clean.install_fault_plan(FaultPlan::new());
    let clean_outcome = drive(&mut clean, w, salt).expect("fault-free run");
    let clean_digest = clean.db().state_digest();
    let mutating_ops = clean
        .db()
        .fault_state()
        .map(|f| f.ops_observed())
        .unwrap_or(0);

    let mut report = SweepReport {
        mutating_ops,
        clean_outcome,
        aborted: 0,
        committed: 0,
        violations: Vec::new(),
    };

    // `k = mutating_ops` is the control: its fault never fires.
    for k in 0..=mutating_ops {
        let mut s = build_session(w, limit);
        s.install_fault_plan(FaultPlan::single(FaultSpec::nth(k)));
        let res = drive(&mut s, w, salt);
        let fired = s.db().fault_state().is_some_and(|f| f.any_fired());
        let digest = s.db().state_digest();

        let aborted = match res {
            Err(_) => true,
            Ok(Outcome::Aborted) => true,
            Ok(_) => false,
        };
        if fired != aborted {
            report
                .violations
                .push(format!("k={k}: fault fired={fired} but aborted={aborted}"));
        }
        if aborted {
            report.aborted += 1;
            if digest != pre_digest {
                report.violations.push(format!(
                    "k={k}: aborted run left a database differing from the \
                     pre-transaction snapshot"
                ));
            }
        } else {
            report.committed += 1;
            if digest != clean_digest {
                report.violations.push(format!(
                    "k={k}: unfired-fault run diverged from the fault-free \
                     final state"
                ));
            }
            if let Ok(outcome) = res {
                if outcome != clean_outcome {
                    report.violations.push(format!(
                        "k={k}: unfired-fault run ended {outcome:?}, \
                         fault-free run ended {clean_outcome:?}"
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use crate::random::{generate, RandomConfig};

    use super::*;

    fn small(seed: u64) -> RandomConfig {
        RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 3,
            max_actions: 2,
            rows_per_table: 2,
            seed,
            ..RandomConfig::default()
        }
    }

    #[test]
    fn sweep_holds_on_sampled_workloads() {
        for seed in 0..8 {
            let w = generate(&small(seed));
            let report = fault_sweep(&w, 17, 40);
            assert!(report.holds(), "seed {seed}: {:#?}", report.violations);
            // Every fault index before N fires and aborts; the control
            // commits identically to the fault-free run.
            assert_eq!(report.aborted as u64, report.mutating_ops, "seed {seed}");
            assert_eq!(report.committed, 1, "seed {seed}");
        }
    }

    #[test]
    fn sweep_counts_user_dml_and_rule_actions() {
        // At least the user's own mutating statements are observed.
        let w = generate(&small(3));
        let report = fault_sweep(&w, 17, 40);
        assert!(report.mutating_ops > 0, "{report:?}");
    }
}
