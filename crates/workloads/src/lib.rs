//! # starling-workloads
//!
//! Workload generators and case studies for the Starling experiments.
//!
//! * [`random`] — a seeded, parameterized generator of *valid* rule sets,
//!   initial databases, and user transitions. Every experiment that
//!   compares static verdicts against the execution-graph oracle draws its
//!   corpus from here, reproducibly.
//! * [`power_network`] — a reconstruction of the power-network design
//!   application of \[CW90\], the paper's Section 5 termination case study:
//!   a cascade of deletions whose triggering cycle is discharged by
//!   delete-only certificates.
//! * [`constraints`] — integrity-constraint maintenance and derived-data
//!   rules (the \[CW90\]/\[WF90\] motivating workload): referential
//!   integrity, salary caps, materialized per-department totals. Used for
//!   the Section 6.4 iterative-confluence case study.
//! * [`audit`] — observable audit rules (`SELECT`/`ROLLBACK` actions) for
//!   the Section 8 experiments.
//! * [`versioning`] — append-only document versioning (another of the
//!   introduction's motivating applications).
//! * [`corpus`] — small named rule sets with known ground-truth properties,
//!   shared by tests and benches.
//! * [`cond_stress`] — condition-heavy rule programs (joins and filters
//!   over a large reference table) for benchmarking SQL evaluation inside
//!   the oracle.
//! * [`scale`] — the same condition shapes parameterized by row count
//!   (100k–1M rows) for benchmarking the columnar execution path.
//! * [`fault_sweep`] — exhaustive atomicity checking under injected storage
//!   faults: replay a transaction with a fault at every mutating-op index
//!   and verify the database is always snapshot-or-committed.
//! * [`chase`] — chase-style linear existential rules (Calautti et al.):
//!   weakly acyclic, non-terminating, and order-sensitive TGD sets whose
//!   fresh-label arithmetic imports the chase's termination and confluence
//!   regimes into the analyzers and the `explain` path.

pub mod audit;
pub mod chase;
pub mod cond_stress;
pub mod constraints;
pub mod corpus;
pub mod fault_sweep;
pub mod power_network;
pub mod random;
pub mod scale;
pub mod stress;
pub mod versioning;

pub use corpus::{corpus, CorpusEntry};
pub use fault_sweep::{fault_sweep, SweepReport};
pub use random::{GeneratedWorkload, RandomConfig};

use starling_engine::RuleSet;
use starling_sql::ast::Statement;
use starling_sql::parse_script;
use starling_sql::RuleDef;
use starling_storage::Database;

/// A self-contained workload: schema + data script, rule definitions, and
/// user transitions to probe with.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name.
    pub name: &'static str,
    /// Script creating tables and seeding initial data.
    pub setup: String,
    /// Script defining the rules (and any `declare` directives).
    pub rules: String,
    /// User statements forming the initial transition for oracle runs.
    pub user_transition: String,
}

impl Workload {
    /// Materializes the workload: executes `setup`, parses `rules`, and
    /// returns the seeded database plus rule definitions and directives.
    pub fn build(
        &self,
    ) -> Result<
        (Database, Vec<RuleDef>, Vec<starling_sql::ast::Directive>),
        starling_engine::EngineError,
    > {
        let mut session = starling_engine::Session::new();
        session.execute_script(&self.setup)?;
        session.commit(&mut starling_engine::FirstEligible)?;
        let mut defs = Vec::new();
        let mut directives = Vec::new();
        for stmt in parse_script(&self.rules)? {
            match stmt {
                Statement::CreateRule(r) => defs.push(r),
                Statement::Directive(d) => directives.push(d),
                other => {
                    return Err(starling_engine::EngineError::InvalidStatement(format!(
                        "unexpected statement in rules script: {other}"
                    )))
                }
            }
        }
        Ok((session.db().clone(), defs, directives))
    }

    /// Compiles the rule set against the built database's catalog.
    pub fn compile(&self) -> Result<(Database, RuleSet), starling_engine::EngineError> {
        let (db, defs, _) = self.build()?;
        let rs = RuleSet::compile(&defs, db.catalog())?;
        Ok((db, rs))
    }

    /// The user transition as parsed actions.
    pub fn user_actions(&self) -> Result<Vec<starling_sql::ast::Action>, starling_sql::SqlError> {
        Ok(parse_script(&self.user_transition)?
            .into_iter()
            .filter_map(|s| match s {
                Statement::Dml(a) => Some(a),
                _ => None,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_case_studies_build_and_compile() {
        for w in [
            power_network::workload(),
            constraints::workload(),
            audit::workload(),
            versioning::workload(),
            chase::terminating(),
            chase::nonterminating(),
            chase::order_sensitive(),
        ] {
            let (db, rs) = w
                .compile()
                .unwrap_or_else(|e| panic!("workload `{}` failed to compile: {e}", w.name));
            assert!(!rs.is_empty(), "{}", w.name);
            assert!(!db.catalog().is_empty(), "{}", w.name);
            assert!(!w.user_actions().unwrap().is_empty(), "{}", w.name);
        }
    }
}
