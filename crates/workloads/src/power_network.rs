//! The power-network design application — the paper's Section 5 case study
//! (from \[CW90\], *Deriving production rules for constraint maintenance*,
//! which analyzed a power distribution network design application).
//!
//! A reconstruction: nodes, lines between nodes, and connection records.
//! The rules maintain the design's invariants:
//!
//! * an overloaded line trips (its state opens);
//! * connections of open lines are removed;
//! * lines whose endpoints vanish are removed;
//! * nodes with no remaining connections are removed;
//! * a bounded load-shedding rule monotonically reduces load;
//! * a guard rolls back designs with negative voltage.
//!
//! The deletion rules form a triggering **cycle**
//! (`drop_conns → drop_dead_nodes → drop_dangling_lines → drop_conns`),
//! exactly the situation Section 5 describes: the static analysis cannot
//! prove termination from the graph alone, but every rule on the cycle only
//! deletes, so the delete-only special case discharges it.

use crate::Workload;

/// The power-network workload.
pub fn workload() -> Workload {
    Workload {
        name: "power_network",
        setup: SETUP.to_owned(),
        rules: RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

const SETUP: &str = "
create table node (nid int, voltage int, feeder int);
create table line (lid int, src int, dst int, state int, load int);
create table conn (cid int, nid int, lid int);

insert into node values (1, 120, 1);
insert into node values (2, 110, 0);
insert into node values (3, 100, 0);
insert into node values (4, 90, 0);
insert into line values (10, 1, 2, 1, 40);
insert into line values (11, 2, 3, 1, 60);
insert into line values (12, 3, 4, 1, 80);
insert into conn values (100, 1, 10);
insert into conn values (101, 2, 10);
insert into conn values (102, 2, 11);
insert into conn values (103, 3, 11);
insert into conn values (104, 3, 12);
insert into conn values (105, 4, 12);
";

const RULES: &str = "
-- An overloaded line trips: its state opens.
create rule trip_overload on line
when updated(load)
if exists (select * from new_updated where load > 100)
then update line set state = 0 where load > 100
end;

-- Connections of open lines are dropped.
create rule drop_conns on line
when updated(state), deleted
then delete from conn where lid in (select lid from line where state = 0);
     delete from conn where lid not in (select lid from line)
end;

-- Nodes with no remaining connections are dropped (feeders stay).
create rule drop_dead_nodes on conn
when deleted
then delete from node where feeder = 0
       and nid not in (select nid from conn)
end;

-- Lines with a vanished endpoint are dropped.
create rule drop_dangling_lines on node
when deleted
then delete from line where src not in (select nid from node)
       or dst not in (select nid from node)
end;

-- Bounded load shedding: reduce load while above the soft limit.
create rule shed_load on line
when updated(load)
then update line set load = load - 10 where load > 90
end;

-- Design guard: negative voltage aborts the design transaction.
create rule guard_voltage on node
when inserted, updated(voltage)
if exists (select * from node where voltage < 0)
then rollback
end;

-- Orderings: the guard fires before anything else; tripping precedes the
-- cleanup cascade.
declare terminates shed_load 'load decreases by 10 toward the 90 bound';
";

const USER: &str = "
update line set load = 130 where lid = 12;
";

#[cfg(test)]
mod tests {
    use starling_engine::{explore, ExploreConfig, FirstEligible, Outcome, Processor};

    use super::*;

    #[test]
    fn cascade_runs_to_quiescence() {
        let w = workload();
        let (db, rs) = w.compile().unwrap();
        let snapshot = db.clone();
        let mut working = db.clone();
        let ops = starling_engine::exec_graph::apply_user_actions(
            &mut working,
            &w.user_actions().unwrap(),
        )
        .unwrap();
        let mut st = starling_engine::ExecState::new(working, rs.len(), &ops);
        let res = Processor::new(&rs)
            .with_limit(500)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        // The overloaded line tripped and the cascade removed it and its
        // now-dangling parts.
        let line = st.db.table("line").unwrap();
        assert!(line
            .iter()
            .all(|(_, r)| r[4] <= starling_storage::Value::Int(100)));
    }

    #[test]
    fn oracle_confirms_termination_of_the_case_study_transition() {
        let w = workload();
        let (db, rs) = w.compile().unwrap();
        let g = explore(
            &rs,
            &db,
            &w.user_actions().unwrap(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
    }
}
