//! Seeded random generation of valid rule sets, databases, and transitions.
//!
//! The generator is the corpus source for every oracle-vs-analysis
//! experiment: given the same [`RandomConfig`] it reproduces the same
//! workload bit-for-bit. All generated rule sets pass semantic validation
//! (this is property-tested), so experiment pipelines never trip over
//! malformed inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use starling_engine::RuleSet;
use starling_sql::ast::*;
use starling_storage::{Catalog, ColumnDef, Database, TableSchema, Value, ValueType};

/// Parameters of the random workload generator.
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of tables (`t0 .. t{n-1}`).
    pub n_tables: usize,
    /// Columns per table (`c0 .. c{m-1}`, all integer).
    pub n_cols: usize,
    /// Number of rules (`r0 .. r{k-1}`).
    pub n_rules: usize,
    /// Maximum actions per rule (at least 1 is always generated).
    pub max_actions: usize,
    /// Probability a rule has a condition.
    pub p_condition: f64,
    /// Probability an extra action slot is an observable `SELECT`.
    pub p_observable: f64,
    /// Probability each rule pair `(i, j)`, `i < j`, is ordered
    /// (`r_i precedes r_j` — always downward, so priorities stay acyclic).
    pub p_priority: f64,
    /// Rows seeded per table in [`GeneratedWorkload::seed_database`].
    pub rows_per_table: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            n_tables: 4,
            n_cols: 3,
            n_rules: 8,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.15,
            p_priority: 0.2,
            rows_per_table: 3,
            seed: 0,
        }
    }
}

/// A generated workload.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The schema.
    pub catalog: Catalog,
    /// The generated rules.
    pub defs: Vec<RuleDef>,
    /// Configuration used (for reporting).
    pub config: RandomConfig,
}

impl GeneratedWorkload {
    /// Compiles the rule set (infallible for generated workloads; panics on
    /// generator bugs, which the property tests would catch first).
    pub fn compile(&self) -> RuleSet {
        RuleSet::compile(&self.defs, &self.catalog).expect("generated workload must compile")
    }

    /// A database over the catalog, seeded with `rows_per_table` rows of
    /// small integers (so conditions are sometimes true, sometimes false).
    pub fn seed_database(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed_da7a);
        let mut db = Database::new();
        for schema in self.catalog.tables() {
            db.create_table(schema.clone()).expect("fresh catalog");
        }
        for schema in self.catalog.tables() {
            for _ in 0..self.config.rows_per_table {
                let row: Vec<Value> = (0..schema.arity())
                    .map(|_| Value::Int(rng.gen_range(0..10)))
                    .collect();
                db.insert(&schema.name, row).expect("typed row");
            }
        }
        db
    }

    /// A random user transition: 1–3 DML statements over the catalog.
    pub fn user_transition(&self, salt: u64) -> Vec<Action> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ salt);
        let n = rng.gen_range(1..=3);
        (0..n)
            .map(|_| random_dml(&mut rng, &self.catalog))
            .collect()
    }

    /// The rules as a parseable script.
    pub fn script(&self) -> String {
        let mut s = String::new();
        for d in &self.defs {
            s.push_str(&d.to_string());
            s.push_str(";\n");
        }
        s
    }
}

/// Generates a workload from a configuration.
pub fn generate(config: &RandomConfig) -> GeneratedWorkload {
    assert!(config.n_tables > 0 && config.n_cols > 0 && config.max_actions > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut catalog = Catalog::new();
    for t in 0..config.n_tables {
        let cols = (0..config.n_cols)
            .map(|c| ColumnDef::new(format!("c{c}"), ValueType::Int))
            .collect();
        catalog
            .add_table(TableSchema::new(format!("t{t}"), cols).expect("distinct columns"))
            .expect("distinct tables");
    }

    let mut defs = Vec::with_capacity(config.n_rules);
    for r in 0..config.n_rules {
        defs.push(random_rule(&mut rng, config, r));
    }

    // Acyclic random priorities: only `r_i precedes r_j` for i < j.
    for i in 0..config.n_rules {
        for j in (i + 1)..config.n_rules {
            if rng.gen_bool(config.p_priority) {
                let target = defs[j].name.clone();
                defs[i].precedes.push(target);
            }
        }
    }

    GeneratedWorkload {
        catalog,
        defs,
        config: config.clone(),
    }
}

fn table_name(rng: &mut StdRng, cfg: &RandomConfig) -> String {
    format!("t{}", rng.gen_range(0..cfg.n_tables))
}

fn col_name(rng: &mut StdRng, cfg: &RandomConfig) -> String {
    format!("c{}", rng.gen_range(0..cfg.n_cols))
}

fn random_rule(rng: &mut StdRng, cfg: &RandomConfig, idx: usize) -> RuleDef {
    let table = table_name(rng, cfg);
    let event = match rng.gen_range(0..3) {
        0 => TriggerEvent::Inserted,
        1 => TriggerEvent::Deleted,
        _ => TriggerEvent::Updated(Some(vec![col_name(rng, cfg)])),
    };

    // Condition referencing the transition table matching the event, or the
    // base table — both shapes appear in real Starburst programs.
    let condition = if rng.gen_bool(cfg.p_condition) {
        let source = if rng.gen_bool(0.5) {
            match &event {
                TriggerEvent::Inserted => TableRef::Transition(TransitionTable::Inserted),
                TriggerEvent::Deleted => TableRef::Transition(TransitionTable::Deleted),
                TriggerEvent::Updated(_) => TableRef::Transition(TransitionTable::NewUpdated),
            }
        } else {
            TableRef::Base(table.clone())
        };
        let col = col_name(rng, cfg);
        let bound = rng.gen_range(0..10);
        Some(Expr::Exists(Box::new(SelectStmt {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: vec![FromItem {
                table: source,
                alias: None,
            }],
            where_clause: Some(Expr::bin(
                if rng.gen_bool(0.5) {
                    BinOp::Gt
                } else {
                    BinOp::Lt
                },
                Expr::col(&col),
                Expr::int(bound),
            )),
            group_by: vec![],
            having: None,
            order_by: vec![],
        })))
    } else {
        None
    };

    let n_actions = rng.gen_range(1..=cfg.max_actions);
    let mut actions: Vec<Action> = (0..n_actions).map(|_| random_action(rng, cfg)).collect();
    if rng.gen_bool(cfg.p_observable) {
        let t = table_name(rng, cfg);
        let c = col_name(rng, cfg);
        actions.push(Action::Select(SelectStmt {
            distinct: false,
            items: vec![SelectItem::Expr {
                expr: Expr::col(&c),
                alias: None,
            }],
            from: vec![FromItem {
                table: TableRef::Base(t),
                alias: None,
            }],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        }));
    }

    RuleDef {
        name: format!("r{idx}"),
        table,
        events: vec![event],
        condition,
        actions,
        precedes: Vec::new(),
        follows: Vec::new(),
    }
}

fn random_action(rng: &mut StdRng, cfg: &RandomConfig) -> Action {
    let table = table_name(rng, cfg);
    match rng.gen_range(0..3) {
        0 => Action::Insert(InsertStmt {
            table,
            columns: None,
            source: InsertSource::Values(vec![(0..cfg.n_cols)
                .map(|_| Expr::int(rng.gen_range(0..10)))
                .collect()]),
        }),
        1 => Action::Delete(DeleteStmt {
            where_clause: bound_predicate(rng, cfg),
            table,
        }),
        _ => {
            let col = col_name(rng, cfg);
            let set_expr = if rng.gen_bool(0.5) {
                Expr::int(rng.gen_range(0..10))
            } else {
                Expr::bin(BinOp::Add, Expr::col(&col), Expr::int(rng.gen_range(1..4)))
            };
            Action::Update(UpdateStmt {
                sets: vec![(col, set_expr)],
                where_clause: bound_predicate(rng, cfg),
                table,
            })
        }
    }
}

fn bound_predicate(rng: &mut StdRng, cfg: &RandomConfig) -> Option<Expr> {
    if rng.gen_bool(0.7) {
        Some(Expr::bin(
            if rng.gen_bool(0.5) {
                BinOp::Lt
            } else {
                BinOp::Gt
            },
            Expr::col(&col_name(rng, cfg)),
            Expr::int(rng.gen_range(0..10)),
        ))
    } else {
        None
    }
}

fn random_dml(rng: &mut StdRng, catalog: &Catalog) -> Action {
    let tables: Vec<&TableSchema> = catalog.tables().collect();
    let schema = tables[rng.gen_range(0..tables.len())];
    let table = schema.name.clone();
    match rng.gen_range(0..3) {
        0 => Action::Insert(InsertStmt {
            table,
            columns: None,
            source: InsertSource::Values(vec![(0..schema.arity())
                .map(|_| Expr::int(rng.gen_range(0..10)))
                .collect()]),
        }),
        1 => Action::Delete(DeleteStmt {
            where_clause: Some(Expr::bin(
                BinOp::Lt,
                Expr::col(&schema.columns[0].name),
                Expr::int(rng.gen_range(0..10)),
            )),
            table,
        }),
        _ => Action::Update(UpdateStmt {
            sets: vec![(
                schema.columns[rng.gen_range(0..schema.arity())]
                    .name
                    .clone(),
                Expr::int(rng.gen_range(0..10)),
            )],
            where_clause: Some(Expr::bin(
                BinOp::Gt,
                Expr::col(&schema.columns[0].name),
                Expr::int(rng.gen_range(0..10)),
            )),
            table,
        }),
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::validate::validate_rule;

    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandomConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.defs, b.defs);
        assert_eq!(
            a.seed_database().state_digest(),
            b.seed_database().state_digest()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomConfig::default());
        let b = generate(&RandomConfig {
            seed: 99,
            ..RandomConfig::default()
        });
        assert_ne!(a.defs, b.defs);
    }

    #[test]
    fn generated_rules_validate_across_seeds() {
        for seed in 0..50 {
            let w = generate(&RandomConfig {
                seed,
                n_rules: 10,
                ..RandomConfig::default()
            });
            for def in &w.defs {
                validate_rule(def, &w.catalog)
                    .unwrap_or_else(|e| panic!("seed {seed}, rule {}: {e}", def.name));
            }
            let rs = w.compile();
            assert_eq!(rs.len(), 10);
        }
    }

    #[test]
    fn script_round_trips() {
        let w = generate(&RandomConfig::default());
        let script = w.script();
        let stmts = starling_sql::parse_script(&script).unwrap();
        assert_eq!(stmts.len(), w.defs.len());
    }

    #[test]
    fn user_transitions_are_valid() {
        let w = generate(&RandomConfig::default());
        for salt in 0..10 {
            for a in w.user_transition(salt) {
                starling_sql::validate::validate_dml(&a, &w.catalog).unwrap();
            }
        }
    }

    #[test]
    fn seeded_database_has_rows() {
        let w = generate(&RandomConfig::default());
        let db = w.seed_database();
        for t in db.tables() {
            assert_eq!(t.len(), w.config.rows_per_table);
        }
    }

    #[test]
    fn priorities_are_acyclic() {
        // p_priority = 1.0 generates the complete downward order — still
        // acyclic, so compilation succeeds.
        let w = generate(&RandomConfig {
            p_priority: 1.0,
            ..RandomConfig::default()
        });
        let rs = w.compile();
        assert!(rs.priority().ordered_pair_count() > 0);
    }
}
