//! Large-table scaling workloads for the columnar execution path.
//!
//! [`cond_stress`](crate::cond_stress) pins its reference table at a few
//! hundred rows so the full bench family stays fast under the row-at-a-time
//! oracle. This module parameterizes the same condition shapes by row
//! count so the bench harness can measure 100k- and 1M-row tables, where
//! the columnar scan/filter kernels and the cached per-version hash join
//! index dominate (`scale/*` in `BENCH_oracle.json`).
//!
//! The predicates are deliberately late- or never-matching (`k > rows-5`,
//! `v > 99`): an early-matching `EXISTS` would let any engine stop after a
//! handful of rows and the table size would not matter. The user transition
//! inserts a key near the end of `big`'s scan order for the same reason.
//!
//! Both flavors are pure rule-interleaving lattices over disjoint side
//! tables, so — like `cond_stress` — the verdicts are pinned: terminates,
//! confluent, observably deterministic.

use starling_engine::RuleSet;
use starling_sql::ast::{Action, Statement};
use starling_sql::{parse_script, parse_statement};
use starling_storage::{Catalog, ColumnDef, Database, TableSchema, Value, ValueType};

/// Number of interleaving rules per flavor. Smaller than
/// `cond_stress::FAN`: the graph shape is not what `scale/*` measures, and
/// each extra rule multiplies the per-exploration scan work.
pub const FAN: usize = 2;

/// The catalog: `evt(k, v)` (the rules' table), `big(k, v)` (the scaled
/// reference table), `seeds(x)`, and one side table `s{i}(x)` per rule.
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["evt", "big"] {
        cat.add_table(
            TableSchema::new(
                name,
                vec![
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    }
    cat.add_table(TableSchema::new("seeds", vec![ColumnDef::new("x", ValueType::Int)]).unwrap())
        .unwrap();
    for i in 0..FAN {
        cat.add_table(
            TableSchema::new(format!("s{i}"), vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
        )
        .unwrap();
    }
    cat
}

/// A database with `big` holding `rows` rows (`v = k % 10`, as in
/// `cond_stress`) and three seed keys spread across the key range.
pub fn database(rows: i64) -> Database {
    assert!(rows >= 16, "scale workload needs a non-trivial table");
    let mut db = Database::new();
    for schema in catalog().tables() {
        db.create_table(schema.clone()).unwrap();
    }
    for k in 0..rows {
        db.insert("big", vec![Value::Int(k), Value::Int(k % 10)])
            .unwrap();
    }
    for x in [3, rows / 2, rows - 7] {
        db.insert("seeds", vec![Value::Int(x)]).unwrap();
    }
    db
}

/// The filter-flavored rules: `f0` matches only in the last five keys of
/// the scan, `f1` never matches — both force full scans through the
/// pushed-down (vectorized) predicate.
pub fn filter_rules(rows: i64) -> RuleSet {
    let last = rows - 5;
    compile_script(&format!(
        "create rule f0 on evt when inserted \
         if exists (select * from big where v > 8 and k > {last}) \
         then insert into s0 values (0) end;\n\
         create rule f1 on evt when inserted \
         if exists (select * from big where v > 99) \
         then insert into s1 values (1) end;\n"
    ))
}

/// The join-flavored rules: each joins the (tiny) transition table against
/// `big` on `k`. A nested loop pays `rows` comparisons per evaluation; the
/// batch path probes the cached hash index once.
pub fn join_rules(_rows: i64) -> RuleSet {
    let mut s = String::new();
    for i in 0..FAN {
        s.push_str(&format!(
            "create rule j{i} on evt when inserted \
             if exists (select * from inserted i, big b \
                        where b.k = i.k and b.v > {i}) \
             then insert into s{i} values ({i}) end;\n"
        ));
    }
    compile_script(&s)
}

fn compile_script(script: &str) -> RuleSet {
    let defs: Vec<_> = parse_script(script)
        .expect("scale script parses")
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    RuleSet::compile(&defs, &catalog()).expect("scale script compiles")
}

/// The user transition: one insert into `evt` with a `k` that joins near
/// the end of `big`'s scan order and a `v` that satisfies every join rule.
pub fn user_actions(rows: i64) -> Vec<Action> {
    let k = rows - 3;
    let Statement::Dml(a) = parse_statement(&format!("insert into evt values ({k}, 9)")).unwrap()
    else {
        unreachable!()
    };
    vec![a]
}

#[cfg(test)]
mod tests {
    use starling_engine::{explore_with_mode, EvalMode, ExploreConfig};

    use super::*;

    /// A small instance of each flavor explores identically under all
    /// three evaluation modes, with the expected rules firing.
    #[test]
    fn scale_graphs_pinned_across_modes() {
        // `rows - 3 ≡ 9 (mod 10)`: the inserted key's reference `v` is 9,
        // so every join rule's `v > i` guard holds.
        let rows = 72;
        let db = database(rows);
        let actions = user_actions(rows);
        let cfg = ExploreConfig::default()
            .with_max_states(5_000)
            .with_max_paths(10_000);
        for (name, rules, fired_rules) in [
            ("join", join_rules(rows), FAN),
            // f1's condition (`v > 99`) is never true; only f0 fires.
            ("filter", filter_rules(rows), 1),
        ] {
            let mut digests = Vec::new();
            for mode in [EvalMode::Columnar, EvalMode::Plan, EvalMode::Interp] {
                let g = explore_with_mode(&rules, &db, &actions, &cfg, mode).unwrap();
                assert!(!g.truncated(), "{name} truncated under {mode:?}");
                assert_eq!(g.terminates(), Some(true), "{name} under {mode:?}");
                assert_eq!(g.confluent(), Some(true), "{name} under {mode:?}");
                let (_, final_db) = g.final_dbs.first().expect("one final state");
                let fired = (0..FAN)
                    .filter(|i| final_db.table(&format!("s{i}")).unwrap().len() == 1)
                    .count();
                assert_eq!(fired, fired_rules, "{name} under {mode:?}");
                digests.push(final_db.state_digest());
            }
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "{name}: final digests diverge across modes: {digests:#018x?}"
            );
        }
    }
}
