//! A deliberately state-heavy rule program for oracle stress testing.
//!
//! The execution graph of this workload is large but fully known:
//!
//! * **Wide fan-out** — `FAN` unordered rules all triggered by the user's
//!   insert into `t`, each inserting a constant into its own table. Every
//!   interleaving is explored; because each interleaving allocates tuple
//!   ids in a different order, the pending transition windows differ and
//!   the graph is close to a full interleaving *tree*, not a small
//!   lattice.
//! * **Long chain** — a cascade `c0 → c1 → … → c{CHAIN-1}` rooted at the
//!   same insert, interleaving freely with the fan rules: chain progress
//!   multiplies the tree.
//!
//! Everything commutes (distinct tables, constant inserts, no reads, no
//! observables), so the verdicts are pinned: terminates, confluent, and
//! observably deterministic — while the state/edge counts are big enough
//! to dominate any snapshot or digest overhead in the explorer. The
//! `bench_oracle` harness uses this as its stress case; the module test
//! pins the exact graph size so any semantic drift in the explorer (or a
//! nondeterministic parallel merge) fails loudly.

use starling_engine::RuleSet;
use starling_sql::ast::{Action, Statement};
use starling_sql::{parse_script, parse_statement};
use starling_storage::{Catalog, ColumnDef, Database, TableSchema, ValueType};

/// Number of unordered fan-out rules.
pub const FAN: usize = 4;
/// Length of the ordered cascade.
pub const CHAIN: usize = 4;

/// The stress catalog: `t`, fan targets `f0..f{FAN-1}`, chain tables
/// `c0..c{CHAIN-1}`, each with one integer column `x`.
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut names = vec!["t".to_owned()];
    names.extend((0..FAN).map(|i| format!("f{i}")));
    names.extend((0..CHAIN).map(|i| format!("c{i}")));
    for name in names {
        cat.add_table(TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap())
            .unwrap();
    }
    cat
}

/// The rule script (see module docs).
pub fn rules_script() -> String {
    let mut s = String::new();
    for i in 0..FAN {
        s.push_str(&format!(
            "create rule fan{i} on t when inserted then insert into f{i} values ({i}) end;\n"
        ));
    }
    // The chain: the user's insert starts c0; each ci insert cascades to
    // c{i+1}. Each link only becomes triggered once its predecessor has
    // fired, so the chain advances sequentially while interleaving freely
    // with the fan rules.
    s.push_str("create rule chain0 on t when inserted then insert into c0 values (0) end;\n");
    for i in 1..CHAIN {
        s.push_str(&format!(
            "create rule chain{i} on c{} when inserted then insert into c{i} values ({i}) end;\n",
            i - 1
        ));
    }
    s
}

/// Compiles the stress rule set.
pub fn compile() -> RuleSet {
    let defs: Vec<_> = parse_script(&rules_script())
        .expect("stress script parses")
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    RuleSet::compile(&defs, &catalog()).expect("stress script compiles")
}

/// An empty database over the stress catalog.
pub fn database() -> Database {
    let mut db = Database::new();
    for schema in catalog().tables() {
        db.create_table(schema.clone()).unwrap();
    }
    db
}

/// The user transition: one insert into `t`.
pub fn user_actions() -> Vec<Action> {
    let Statement::Dml(a) = parse_statement("insert into t values (1)").unwrap() else {
        unreachable!()
    };
    vec![a]
}

#[cfg(test)]
mod tests {
    use starling_engine::{explore, ExploreConfig};

    use super::*;

    /// The stress graph's verdicts and exact size are pinned: this is the
    /// determinism anchor for the oracle benchmarks and the parallel
    /// explorer.
    #[test]
    fn stress_graph_verdicts_pinned() {
        let cfg = ExploreConfig::default()
            .with_max_states(200_000)
            .with_max_paths(1_000_000);
        let g = explore(&compile(), &database(), &user_actions(), &cfg).unwrap();
        assert!(!g.truncated());
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.confluent(), Some(true));
        assert_eq!(g.final_db_digests().len(), 1);
        // No observable actions: every path carries the empty stream.
        // (Path enumeration over the lattice is superexponential, so the
        // observable-stream verdict is budget-bound; the graph size below
        // is the meaningful pin.)
        // Exact graph size — fails loudly on any explorer drift.
        assert_eq!(
            (g.states.len(), g.edges.len()),
            (STATES, EDGES),
            "stress graph size drifted"
        );
    }

    /// Pinned graph size for `FAN = 4`, `CHAIN = 4` (established by the
    /// sequential explorer at introduction time and cross-checked by the
    /// parallel-equivalence property tests).
    const STATES: usize = 5189;
    const EDGES: usize = 5188;
}
