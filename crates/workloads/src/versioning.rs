//! Versioning rules — one of the paper's introduction applications
//! ("integrity constraint enforcement, derived data maintenance, triggers
//! and alerters, authorization checking, and **versioning**").
//!
//! Documents live in `doc`; every content update is recorded as an
//! immutable row in `version`, and `doc.head` tracks the latest version
//! number. The recording rule is triggered by updates of `doc.content` and
//! itself updates `doc.head` — a self-edge in the triggering graph that the
//! analyzer flags and a monotone certificate discharges (head only grows,
//! and nothing bounds it... so the *user* certificate carries the argument:
//! the rule is not triggered by `head`, only by `content`).

use crate::Workload;

/// The versioning workload.
pub fn workload() -> Workload {
    Workload {
        name: "versioning",
        setup: SETUP.to_owned(),
        rules: RULES.to_owned(),
        user_transition: USER.to_owned(),
    }
}

const SETUP: &str = "
create table doc (did int, content int, head int);
create table version (did int, vno int, content int);

insert into doc values (1, 100, 0);
insert into doc values (2, 200, 0);
";

const RULES: &str = "
-- Record every content change as a new immutable version row.
create rule snapshot on doc
when updated(content)
then insert into version
       select did, head + 1, content from new_updated;
     update doc set head = head + 1
       where did in (select did from new_updated)
precedes guard_heads
end;

-- Versions are append-only: deleting one aborts the transaction.
create rule immutable_versions on version
when deleted
then rollback
end;

-- Sanity guard: head may never run ahead of the recorded versions.
create rule guard_heads on doc
when updated(head)
if exists (select * from doc where head >
             (select count(*) from version where did = doc.did))
then rollback
end;
";

const USER: &str = "
update doc set content = 101 where did = 1;
";

#[cfg(test)]
mod tests {
    use starling_engine::{explore, ExploreConfig, FirstEligible, Outcome, Processor};
    use starling_storage::Value;

    use super::*;

    #[test]
    fn snapshot_records_versions_and_bumps_head() {
        let w = workload();
        let (db, rules) = w.compile().unwrap();
        let snapshot = db.clone();
        let mut working = db.clone();
        let ops = starling_engine::exec_graph::apply_user_actions(
            &mut working,
            &w.user_actions().unwrap(),
        )
        .unwrap();
        let mut st = starling_engine::ExecState::new(working, rules.len(), &ops);
        let res = Processor::new(&rules)
            .with_limit(200)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);

        let version = st.db.table("version").unwrap();
        assert_eq!(version.len(), 1);
        let (_, row) = version.iter().next().unwrap();
        assert_eq!(row, &vec![Value::Int(1), Value::Int(1), Value::Int(101)]);

        let doc = st.db.table("doc").unwrap();
        let heads: Vec<&Value> = doc.iter().map(|(_, r)| &r[2]).collect();
        assert!(heads.contains(&&Value::Int(1)));
    }

    #[test]
    fn deleting_a_version_rolls_back() {
        let w = workload();
        let (db, rules) = w.compile().unwrap();
        // First produce a version row via the normal path.
        let snapshot = db.clone();
        let mut working = db.clone();
        let ops = starling_engine::exec_graph::apply_user_actions(
            &mut working,
            &w.user_actions().unwrap(),
        )
        .unwrap();
        let mut st = starling_engine::ExecState::new(working, rules.len(), &ops);
        Processor::new(&rules)
            .with_limit(200)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        let with_version = st.db.clone();

        // Now a transaction that deletes from `version` must roll back.
        let del: Vec<_> = starling_sql::parse_script("delete from version")
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                starling_sql::ast::Statement::Dml(a) => Some(a),
                _ => None,
            })
            .collect();
        let snapshot2 = with_version.clone();
        let mut working2 = with_version.clone();
        let ops2 = starling_engine::exec_graph::apply_user_actions(&mut working2, &del).unwrap();
        let mut st2 = starling_engine::ExecState::new(working2, rules.len(), &ops2);
        let res = Processor::new(&rules)
            .with_limit(200)
            .run(&mut st2, &snapshot2, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::RolledBack);
        assert_eq!(st2.db.table("version").unwrap().len(), 1);
    }

    #[test]
    fn oracle_terminates_on_the_update_scenario() {
        let w = workload();
        let (db, rules) = w.compile().unwrap();
        let g = explore(
            &rules,
            &db,
            &w.user_actions().unwrap(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.confluent(), Some(true));
    }
}
