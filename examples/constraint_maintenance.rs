//! The Section 6.4 case study: an integrity-constraint-maintenance rule set
//! that is initially non-confluent, made confluent through the interactive
//! certify/order loop — including the paper's footnote-6 phenomenon where a
//! source of non-confluence "moves around" as orderings are added.
//!
//! ```sh
//! cargo run --example constraint_maintenance
//! ```

use starling::prelude::*;
use starling::workloads::constraints;

fn main() {
    let w = constraints::workload();
    let (db, defs, _) = w.build().expect("workload builds");

    let mut session = InteractiveSession::new(db.catalog().clone(), defs);

    // Round 0: the raw rule set.
    let report = session.analyze("initial").expect("analysis runs");
    println!("=== initial analysis ===\n{report}");
    assert!(!report.confluence.requirement_holds());

    // Drive the Section 6.4 loop: order the first violating pair, repeat.
    let added = session
        .order_until_confluent(20)
        .expect("analysis runs")
        .expect("loop converges");
    println!("=== loop converged after adding {added} ordering(s) ===");
    for (i, step) in session.history().iter().enumerate() {
        println!(
            "  round {i}: {} violation(s), {} open cycle(s) [{}]",
            step.confluence_violations, step.open_cycles, step.action
        );
    }

    // Cycles through cap_salary / maintain_totals remain (they retrigger
    // themselves); discharge them with the workload's documented
    // certificates.
    session.certify_terminates(
        "cap_salary",
        "one application brings every salary to the cap",
    );
    session.certify_terminates("maintain_totals", "recomputation is idempotent");
    let final_report = session.analyze("after certificates").unwrap();
    println!("\n=== final analysis ===\n{final_report}");
    assert!(final_report.confluence.requirement_holds());
    assert!(final_report.termination.is_guaranteed());

    // And the rules still do their job at runtime.
    let mut s = Session::new();
    s.execute_script(&w.setup).unwrap();
    s.execute_script(&w.rules).unwrap();
    s.execute_script(&w.user_transition).unwrap();
    let run = s.commit(&mut FirstEligible).unwrap();
    println!(
        "execution outcome: {:?} ({} rules fired)",
        run.outcome,
        run.fired_count()
    );
    println!("{}", s.db());
}
