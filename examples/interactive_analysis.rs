//! The full interactive-environment surface in one tour: the §6.4 loop,
//! predicate-level refinement, restricted user operations, partitioned
//! incremental re-analysis, and the baseline comparison.
//!
//! ```sh
//! cargo run --example interactive_analysis
//! ```

use starling::analysis::certifications::Certifications;
use starling::analysis::confluence::analyze_confluence;
use starling::analysis::context::AnalysisContext;
use starling::analysis::partition::{partition_rules, IncrementalAnalyzer};
use starling::analysis::restricted::analyze_restricted;
use starling::baselines::compare_all;
use starling::prelude::*;
use starling::sql::ast::Statement;
use starling::storage::Op;

fn main() {
    // Two independent subsystems in one rule program: order handling
    // (sharded counters — racy by Lemma 6.1 but provably disjoint) and
    // an inventory cascade.
    let mut session = Session::new();
    session
        .execute_script(
            "create table orders (oid int, item int);
             create table shard (k int, v int);
             create table stock (item int, onhand int);
             create table restock_queue (item int);
             insert into shard values (1, 0);
             insert into shard values (2, 0);
             insert into stock values (7, 3);",
        )
        .unwrap();
    session
        .execute_script(
            "create rule count_a on orders when inserted
             then update shard set v = v + 1 where k = 1 end;
             create rule count_b on orders when inserted
             then update shard set v = v + 1 where k = 2 end;
             create rule consume on orders when inserted
             then update stock set onhand = onhand - 1
                  where item in (select item from inserted) end;
             create rule reorder on stock when updated(onhand)
             then insert into restock_queue
                  select item from new_updated where onhand < 2 end;",
        )
        .unwrap();
    let defs = session.rule_defs().to_vec();
    let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();

    // 1. Plain analysis: the shard counters are flagged (condition 5).
    let plain = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let conf = analyze_confluence(&plain);
    println!(
        "plain analysis: {} confluence violation(s)",
        conf.violations.len()
    );
    assert!(!conf.requirement_holds());

    // 2. The Section 9 refinement proves the shards disjoint; what remains
    //    is the genuine consume/reorder interaction.
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    let conf = analyze_confluence(&refined);
    println!(
        "with refinement: {} violation(s) remain",
        conf.violations.len()
    );
    for v in &conf.violations {
        println!("  {} vs {}", v.conflict.0, v.conflict.1);
    }

    // 3. The interactive loop orders the rest.
    let mut interactive = InteractiveSession::new(session.db().catalog().clone(), defs.clone());
    let added = interactive.order_until_confluent(10).unwrap();
    println!("interactive loop added {added:?} ordering(s)");

    // 4. Restricted user operations: if users only ever delete orders,
    //    nothing is reachable and every property holds.
    let restricted = analyze_restricted(&plain, &[Op::Delete("orders".to_owned())]);
    println!(
        "restricted to deletes on orders: reachable = {:?}, all guaranteed = {}",
        restricted.reachable,
        restricted.all_guaranteed()
    );
    assert!(restricted.all_guaranteed());

    // 5. Partitioned incremental analysis: the counters and the inventory
    //    cascade share the orders table here, so one partition; after
    //    removing the shared trigger the partitions split.
    let parts = partition_rules(&plain);
    println!("partitions: {}", parts.len());
    let mut inc = IncrementalAnalyzer::new();
    let _ = inc.analyze(&plain);
    let _ = inc.analyze(&plain);
    println!(
        "second incremental run: {} recomputed, {} cached",
        inc.last_recomputed, inc.last_cached
    );
    assert_eq!(inc.last_recomputed, 0);

    // 6. Baseline comparison (Section 9).
    let row = compare_all(&plain);
    println!(
        "baselines: starling={} hh91={} zh90={} ras90={}",
        row.starling, row.hh91, row.zh90, row.ras90
    );
    assert_eq!(row.subsumption_violation(), None);

    // 7. And the program still runs.
    let mut runner = Session::new();
    runner
        .execute_script(
            "create table orders (oid int, item int);
             create table shard (k int, v int);
             create table stock (item int, onhand int);
             create table restock_queue (item int);
             insert into shard values (1, 0);
             insert into shard values (2, 0);
             insert into stock values (7, 3);",
        )
        .unwrap();
    for d in &defs {
        runner.execute(&Statement::CreateRule(d.clone())).unwrap();
    }
    runner
        .execute_script("insert into orders values (1, 7); insert into orders values (2, 7)")
        .unwrap();
    let run = runner.commit(&mut FirstEligible).unwrap();
    println!(
        "execution: {:?}, {} rule(s) fired",
        run.outcome,
        run.fired_count()
    );
    println!("{}", runner.db());
}
