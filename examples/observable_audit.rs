//! Section 8: observable determinism, and its orthogonality to confluence.
//!
//! The audit workload's two `SELECT`-action rules are unordered: the final
//! database is the same on every path (confluent) but the order of audit
//! output depends on scheduling. Both the static analysis (via the
//! fictional `Obs` table) and the exhaustive oracle detect this; ordering
//! the audit rules fixes it.
//!
//! ```sh
//! cargo run --example observable_audit
//! ```

use starling::analysis::observable::analyze_observable_determinism;
use starling::prelude::*;
use starling::workloads::audit;

fn main() {
    let w = audit::workload();
    let (db, defs, _) = w.build().expect("workload builds");
    let rules = RuleSet::compile(&defs, db.catalog()).expect("rules compile");

    // Static: not observably deterministic.
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let obs = analyze_observable_determinism(&ctx);
    println!(
        "observable rules: {:?}\nSig(Obs): {:?}\nstatic verdict: {}",
        obs.observable_rules,
        obs.partial.significant,
        if obs.is_guaranteed() {
            "deterministic"
        } else {
            "MAY NOT be deterministic"
        }
    );
    assert!(!obs.is_guaranteed());

    // Oracle: enumerate the actual observable streams.
    let cfg = ExploreConfig::default();
    let user = w.user_actions().unwrap();
    let g = explore(&rules, &db, &user, &cfg).unwrap();
    let streams = g.observable_streams(&cfg).expect("terminating");
    println!(
        "oracle: confluent = {:?}, {} distinct observable stream(s)",
        g.confluent(),
        streams.len()
    );
    assert_eq!(g.confluent(), Some(true), "orthogonality: still confluent");
    assert!(streams.len() > 1);

    // Fix: by Corollary 8.2, *every* pair of observable rules must be
    // ordered — that includes the rollback guard, not just the two audit
    // queries. Build the chain apply_transfer > guard > audit_low >
    // audit_large.
    let mut fixed = defs.clone();
    let order = |hi: &str, lo: &str, fixed: &mut Vec<starling::sql::RuleDef>| {
        fixed
            .iter_mut()
            .find(|d| d.name == hi)
            .unwrap()
            .precedes
            .push(lo.to_owned());
    };
    order("audit_low", "audit_large", &mut fixed);
    order("guard_overdraft", "audit_low", &mut fixed);
    order("apply_transfer", "guard_overdraft", &mut fixed);
    let fixed_rules = RuleSet::compile(&fixed, db.catalog()).unwrap();
    let fixed_ctx = AnalysisContext::from_ruleset(&fixed_rules, Certifications::new());
    let fixed_obs = analyze_observable_determinism(&fixed_ctx);
    let fixed_graph = explore(&fixed_rules, &db, &user, &cfg).unwrap();
    println!(
        "after ordering all observable rules: static = {}, oracle streams = {}",
        if fixed_obs.is_guaranteed() {
            "deterministic"
        } else {
            "may not"
        },
        fixed_graph.observable_streams(&cfg).unwrap().len()
    );
    assert!(fixed_obs.is_guaranteed());
    assert_eq!(fixed_graph.observable_streams(&cfg).unwrap().len(), 1);
}
