//! The paper's Section 5 termination case study: the power-network design
//! application of [CW90].
//!
//! The deletion-cascade rules form a triggering cycle, so Theorem 5.1 alone
//! cannot prove termination. The analyzer isolates the cycle, auto-derives
//! delete-only certificates for its rules, honors the user's `declare
//! terminates` for the load-shedding rule, and reports guaranteed
//! termination — then the engine runs the cascade and the oracle confirms.
//!
//! ```sh
//! cargo run --example power_network
//! ```

use starling::analysis::termination::{analyze_termination, TerminationVerdict};
use starling::analysis::triggering_graph::TriggeringGraph;
use starling::prelude::*;
use starling::workloads::power_network;

fn main() {
    let w = power_network::workload();
    let (db, defs, directives) = w.build().expect("workload builds");
    let rules = RuleSet::compile(&defs, db.catalog()).expect("rules compile");

    // Static analysis with the workload's certifications.
    let certs = Certifications::from_directives(&directives);
    let ctx = AnalysisContext::from_ruleset(&rules, certs);

    let graph = TriggeringGraph::build(&ctx);
    println!(
        "triggering graph: {} rules, {} edges",
        graph.len(),
        graph.edge_count()
    );
    for scc in graph.cyclic_sccs() {
        let names: Vec<&str> = scc.iter().map(|&i| graph.names[i].as_str()).collect();
        println!("  cycle: {}", names.join(" -> "));
    }
    println!("\nGraphViz:\n{}", graph.to_dot());

    let term = analyze_termination(&ctx);
    println!("verdict: {:?}", term.verdict);
    for cycle in &term.cycles {
        println!(
            "  cycle [{}] discharged: {}",
            cycle.rules.join(", "),
            cycle.discharged
        );
        for c in &cycle.certificates {
            println!("    certificate: {c:?}");
        }
    }
    assert_eq!(term.verdict, TerminationVerdict::GuaranteedWithCertificates);

    // Run the overload scenario.
    let user = w.user_actions().expect("user transition parses");
    let snapshot = db.clone();
    let mut working = db.clone();
    let ops = starling::engine::exec_graph::apply_user_actions(&mut working, &user).unwrap();
    let mut state = ExecState::new(working, rules.len(), &ops);
    let run = Processor::new(&rules)
        .with_limit(1000)
        .run(&mut state, &snapshot, &mut FirstEligible)
        .unwrap();
    println!(
        "\nexecution: {} considerations, outcome {:?}",
        run.considerations.len(),
        run.outcome
    );
    println!("{}", state.db);

    // Exhaustive oracle cross-check on this scenario.
    let g = explore(&rules, &db, &user, &ExploreConfig::default()).unwrap();
    println!(
        "oracle: {} states explored, terminates = {:?}",
        g.states.len(),
        g.terminates()
    );
    assert_eq!(g.terminates(), Some(true));
}
