//! Quickstart: define a schema and rules, analyze them, fix the problems
//! the analyzer isolates, and run the rules against real data.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use starling::analysis::confluence::ConfluenceVerdict;
use starling::prelude::*;

fn main() {
    // 1. A schema and a rule program: orders, stock, and an audit query.
    //    `restock` and `discount` both react to order insertions and both
    //    write `stock`, with no priority between them.
    let script = "
        create table orders (oid int, item int, qty int);
        create table stock (item int, onhand int, price int);

        create rule restock on orders
        when inserted
        then update stock set onhand = onhand - (select sum(qty) from inserted
               where inserted.item = stock.item)
             where item in (select item from inserted)
        end;

        create rule discount on orders
        when inserted
        if exists (select * from stock where onhand < 10)
        then update stock set price = price - 1 where onhand < 10
        end;
    ";

    let mut session = Session::new();
    session.execute_script(script).expect("script is valid");
    let defs = session.rule_defs().to_vec();
    let rules = RuleSet::compile(&defs, session.db().catalog()).expect("rules compile");

    // 2. Static analysis: termination, confluence, observable determinism.
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let report = AnalysisReport::run(&ctx, &[]);
    println!("{report}");
    assert_eq!(
        report.confluence.verdict,
        ConfluenceVerdict::MayNotBeConfluent,
        "restock races discount on stock"
    );

    // 3. The report isolates the responsible pair; order it and re-analyze.
    let mut fixed_defs = defs.clone();
    fixed_defs
        .iter_mut()
        .find(|d| d.name == "restock")
        .expect("restock exists")
        .precedes
        .push("discount".to_owned());
    let fixed_rules =
        RuleSet::compile(&fixed_defs, session.db().catalog()).expect("still compiles");
    let fixed_ctx = AnalysisContext::from_ruleset(&fixed_rules, Certifications::new());
    let fixed = AnalysisReport::run(&fixed_ctx, &[]);
    println!("--- after ordering restock before discount ---\n");
    println!("{fixed}");
    assert!(fixed.all_guaranteed());

    // 4. Run the fixed program on data.
    let mut s = Session::new();
    s.execute_script(
        "create table orders (oid int, item int, qty int);
         create table stock (item int, onhand int, price int);
         insert into stock values (1, 12, 100);
         insert into stock values (2, 50, 200);",
    )
    .unwrap();
    for d in &fixed_defs {
        s.execute(&starling::sql::ast::Statement::CreateRule(d.clone()))
            .unwrap();
    }
    s.execute_script("insert into orders values (1, 1, 5)")
        .unwrap();
    let run = s.commit(&mut FirstEligible).unwrap();
    println!(
        "--- execution: {} considerations, {} fired, outcome {:?} ---",
        run.considerations.len(),
        run.fired_count(),
        run.outcome
    );
    println!("{}", s.db());
}
