#!/usr/bin/env bash
# Oracle perf snapshot: runs the criterion benches in quick mode (the
# vendored criterion stub executes each body once) and then the
# `bench_oracle` harness, which measures exploration throughput and appends
# an entry (states/sec, wall time per corpus case) to BENCH_oracle.json.
#
# Usage: scripts/bench_snapshot.sh [--smoke] [--label NAME] [--out PATH]
#
#   --smoke   one exploration per case — CI keep-alive mode
#   --label   history label for the JSON entry (default: current)
#   --out     JSON path (default: BENCH_oracle.json at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=()
LABEL="current"
OUT="BENCH_oracle.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=(--smoke); shift ;;
    --label) LABEL="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Quick-mode criterion pass: every oracle bench body runs once, so the
# bench code itself cannot rot.
cargo bench -p starling-bench --bench oracle

# Measured pass: throughput numbers recorded in the JSON history.
cargo run --release -q -p starling-bench --bin bench_oracle -- \
  "${SMOKE[@]+"${SMOKE[@]}"}" --label "$LABEL" --out "$OUT"
