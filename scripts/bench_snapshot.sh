#!/usr/bin/env bash
# Oracle perf snapshot: runs the criterion benches in quick mode (the
# vendored criterion stub executes each body once) and then the
# `bench_oracle` harness, which measures exploration throughput and appends
# an entry (states/sec, wall time per corpus case) to BENCH_oracle.json.
#
# Usage: scripts/bench_snapshot.sh [--smoke] [--label NAME] [--out PATH]
#                                  [--filter SUBSTR] [--iters N]
#
#   --smoke   one exploration per case — CI keep-alive mode
#   --label   history label for the JSON entry (default: current)
#   --out     JSON path (default: BENCH_oracle.json at the repo root)
#   --filter  only run cases whose name contains SUBSTR (skips the
#             criterion pass, which has no filter support)
#   --iters   cap measured iterations per case (passed to bench_oracle)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=()
LABEL="current"
OUT="BENCH_oracle.json"
FILTER=""
EXTRA=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=(--smoke); shift ;;
    --label) LABEL="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --filter) FILTER="$2"; EXTRA+=(--filter "$2"); shift 2 ;;
    --iters) EXTRA+=(--iters "$2"); shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Quick-mode criterion pass: every oracle bench body runs once, so the
# bench code itself cannot rot. Skipped under --filter (criterion has no
# case filter; a filtered run wants only the selected bench_oracle cases).
if [[ -z "$FILTER" ]]; then
  cargo bench -p starling-bench --bench oracle
fi

# Measured pass: throughput numbers recorded in the JSON history.
cargo run --release -q -p starling-bench --bin bench_oracle -- \
  "${SMOKE[@]+"${SMOKE[@]}"}" "${EXTRA[@]+"${EXTRA[@]}"}" \
  --label "$LABEL" --out "$OUT"
