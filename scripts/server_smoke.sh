#!/usr/bin/env bash
# Server smoke: builds the release CLI, spawns `starling serve` on an
# ephemeral port, drives a scripted client session that exercises the ok /
# inconclusive / shutdown paths, asserts exit codes and graceful drain,
# then runs the `bench_server` load generator, which appends an entry
# (aggregate N-session speedup over one-shot CLI invocations) to
# BENCH_server.json.
#
# Usage: scripts/server_smoke.sh [--smoke] [--label NAME] [--out PATH]
#
#   --smoke   small seed / few sessions for the load generator — CI mode
#   --label   history label for the JSON entry (default: server-smoke)
#   --out     JSON path (default: BENCH_server.json at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=()
LABEL="server-smoke"
OUT="BENCH_server.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=(--smoke); shift ;;
    --label) LABEL="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cargo build --release -q -p starling-cli -p starling-bench

BIN=target/release/starling
LOG=$(mktemp)
LOG2=$(mktemp)
DATADIR=$(mktemp -d)
SERVER_PID=""
SERVER2_PID=""
trap 'kill "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true; rm -f "$LOG" "$LOG2"; rm -rf "$DATADIR"' EXIT

# Waits for `starling serve` to print its ephemeral address into $1,
# echoing the address; fails the script if it never appears.
wait_for_addr() {
  local log="$1" addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^starling-server listening on //p' "$log")
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$addr" ]]; then
    echo "server did not start:" >&2
    cat "$log" >&2
    return 1
  fi
  echo "$addr"
}

"$BIN" serve --addr 127.0.0.1:0 >"$LOG" 2>&1 &
SERVER_PID=$!

# The serve subcommand prints its (ephemeral) address on the first line.
ADDR=$(wait_for_addr "$LOG")
echo "server listening on $ADDR"

# Scripted session covering the full loop: DDL+DML (load/exec), analysis,
# the §6.4 refinement (certify + order flip confluence to guaranteed and
# explore to a single final state), a budget-exhausted exec (must be an
# `inconclusive` error response, not a teardown), stats, graceful
# shutdown. `set -e` fails the script if the client exits non-zero.
RESPONSES=$("$BIN" client --addr "$ADDR" <<'EOF'
{"id":1,"op":"ping"}
{"id":2,"op":"load","script":"create table t (x int); create table u (x int); insert into u values (0); create rule a on t when inserted then update u set x = 1 end; create rule b on t when inserted then update u set x = 2 end; insert into t values (5);"}
{"id":3,"op":"exec","sql":"insert into t values (1);"}
{"id":4,"op":"analyze"}
{"id":5,"op":"certify","kind":"commute","a":"a","b":"b"}
{"id":6,"op":"order","higher":"a","lower":"b"}
{"id":7,"op":"analyze"}
{"id":8,"op":"explore"}
{"id":9,"op":"load","script":"create table g (x int); create rule grow on g when inserted then insert into g select x + 1 from inserted end;"}
{"id":10,"op":"exec","sql":"insert into g values (1);","budget":{"max_considerations":5}}
{"id":11,"op":"stats"}
{"id":12,"op":"shutdown"}
{"id":13,"op":"quit"}
EOF
)
echo "$RESPONSES"
echo "$RESPONSES" | grep -q '"id":1,"ok":true,"result":{"pong":true}'
echo "$RESPONSES" | grep -q '"id":3,"ok":true'
echo "$RESPONSES" | grep '"id":4' | grep -q '"confluence_guaranteed":false'
echo "$RESPONSES" | grep -q '"id":5,"ok":true'
echo "$RESPONSES" | grep -q '"id":6,"ok":true'
echo "$RESPONSES" | grep '"id":7' | grep -q '"confluence_guaranteed":true'
echo "$RESPONSES" | grep -q '"id":8,"ok":true'
echo "$RESPONSES" | grep -q '"id":10,"ok":false,"error":{"code":"inconclusive"'
echo "$RESPONSES" | grep -q '"id":11,"ok":true'
echo "$RESPONSES" | grep -q '"id":12,"ok":true,"result":{"shutting_down":true}'
echo "$RESPONSES" | grep -q '"id":13,"ok":true,"result":{"bye":true}'

# Graceful drain: the server process must exit 0 by itself once its last
# session quit.
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not drain after shutdown" >&2
  exit 1
fi
wait "$SERVER_PID"
SERVER_PID=""
grep -q "starling-server drained" "$LOG"
echo "graceful drain OK"

# Crash durability: start a durable server, create a persistent store and
# record its digest, then SIGKILL the server (no drain, no final snapshot —
# recovery must come from the WAL tail alone), restart on the same data
# dir, reattach, and require the identical digest.
"$BIN" serve --addr 127.0.0.1:0 --data-dir "$DATADIR" --sync always >"$LOG2" 2>&1 &
SERVER2_PID=$!
ADDR2=$(wait_for_addr "$LOG2")
echo "durable server listening on $ADDR2 (data dir $DATADIR)"

BEFORE=$("$BIN" client --addr "$ADDR2" <<'EOF'
{"id":1,"op":"load","persist":"smoke","script":"create table t (x int); create table audit (x int); create rule mirror on t when inserted then insert into audit select x from inserted end;"}
{"id":2,"op":"exec","sql":"insert into t values (1); insert into t values (2);"}
{"id":3,"op":"digest"}
EOF
)
echo "$BEFORE"
echo "$BEFORE" | grep -q '"id":1,"ok":true'
echo "$BEFORE" | grep -q '"persist":"smoke"'
DIGEST_BEFORE=$(echo "$BEFORE" | sed -n 's/.*"id":3.*"digest":"\([0-9a-f]*\)".*/\1/p')
[[ -n "$DIGEST_BEFORE" ]]

kill -9 "$SERVER2_PID"
wait "$SERVER2_PID" 2>/dev/null || true
echo "killed durable server (SIGKILL), restarting on the same data dir"

"$BIN" serve --addr 127.0.0.1:0 --data-dir "$DATADIR" --sync always >"$LOG2" 2>&1 &
SERVER2_PID=$!
ADDR3=$(wait_for_addr "$LOG2")

AFTER=$("$BIN" client --addr "$ADDR3" <<'EOF'
{"id":1,"op":"load","persist":"smoke"}
{"id":2,"op":"digest"}
{"id":3,"op":"shutdown"}
{"id":4,"op":"quit"}
EOF
)
echo "$AFTER"
echo "$AFTER" | grep -q '"id":1,"ok":true'
echo "$AFTER" | grep -q '"recovered":true'
DIGEST_AFTER=$(echo "$AFTER" | sed -n 's/.*"id":2.*"digest":"\([0-9a-f]*\)".*/\1/p')
if [[ "$DIGEST_BEFORE" != "$DIGEST_AFTER" ]]; then
  echo "digest mismatch after crash recovery: $DIGEST_BEFORE != $DIGEST_AFTER" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  kill -0 "$SERVER2_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$SERVER2_PID" 2>/dev/null || true
SERVER2_PID=""
echo "kill-restart-verify OK (digest $DIGEST_AFTER)"

# Kill-mid-pipeline: a client pipelines a store-bound load plus a burst of
# execs into one socket write, ends with a half-written request line, and
# vanishes without reading a single response. The server must discard the
# torn line, drop the dead session's queued work, release the store's
# single-writer claim, and keep serving — a healthy client must be able to
# reattach to the same store and the server must still drain cleanly.
"$BIN" serve --addr 127.0.0.1:0 --data-dir "$DATADIR" --sync always >"$LOG2" 2>&1 &
SERVER2_PID=$!
ADDR4=$(wait_for_addr "$LOG2")
PORT4=${ADDR4##*:}
exec 3<>"/dev/tcp/127.0.0.1/${PORT4}"
{
  printf '%s\n' '{"id":1,"op":"load","persist":"smoke"}'
  printf '%s\n' '{"id":2,"op":"exec","sql":"insert into t values (3);"}'
  printf '%s\n' '{"id":3,"op":"exec","sql":"insert into t values (4);"}'
  printf '%s' '{"id":4,"op":"exec","sql":"insert into t val'
} >&3
exec 3>&- 3<&-
echo "pipelined client killed mid-request-line"

# The dead session's store claim is released when the server reaps the
# connection; retry the reattach until it lands.
REATTACHED=""
for _ in $(seq 1 100); do
  REATTACHED=$("$BIN" client --addr "$ADDR4" <<'EOF' || true
{"id":1,"op":"load","persist":"smoke"}
{"id":2,"op":"digest"}
{"id":3,"op":"ping"}
{"id":4,"op":"shutdown"}
{"id":5,"op":"quit"}
EOF
)
  echo "$REATTACHED" | grep -q '"id":1,"ok":true' && break
  sleep 0.1
done
echo "$REATTACHED"
echo "$REATTACHED" | grep -q '"id":1,"ok":true'
echo "$REATTACHED" | grep -q '"id":2,"ok":true'
echo "$REATTACHED" | grep -q '"id":3,"ok":true,"result":{"pong":true}'
echo "$REATTACHED" | grep -q '"id":5,"ok":true,"result":{"bye":true}'
for _ in $(seq 1 100); do
  kill -0 "$SERVER2_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER2_PID" 2>/dev/null; then
  echo "server did not drain after kill-mid-pipeline" >&2
  exit 1
fi
wait "$SERVER2_PID" 2>/dev/null || true
SERVER2_PID=""
echo "kill-mid-pipeline OK"

# Load snapshot: N concurrent sessions vs N one-shot CLI invocations,
# recorded in the JSON history.
cargo run --release -q -p starling-bench --bin bench_server -- \
  "${SMOKE[@]+"${SMOKE[@]}"}" --label "$LABEL" --out "$OUT"

# Durability snapshot: commits/sec in-memory vs WAL sync=batch vs
# sync=always, appended to the same history.
cargo run --release -q -p starling-bench --bin bench_server -- \
  --durability "${SMOKE[@]+"${SMOKE[@]}"}" --label "$LABEL" --out "$OUT"
