//! # Starling
//!
//! A from-scratch reproduction of
//!
//! > A. Aiken, J. Widom, J. M. Hellerstein. *Behavior of Database Production
//! > Rules: Termination, Confluence, and Observable Determinism.* SIGMOD
//! > 1992.
//!
//! Starling contains a complete Starburst-style production rule system —
//! SQL subset, in-memory relational storage, net-effect transition
//! semantics, rule processor — plus the paper's static analyses and an
//! exhaustive execution-graph oracle that validates them.
//!
//! ## Crate map
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`storage`] | `starling-storage` | catalog, tuples, databases, digests |
//! | [`sql`] | `starling-sql` | lexer, parser, validator, evaluator |
//! | [`engine`] | `starling-engine` | net effects, priorities, processor, oracle |
//! | [`analysis`] | `starling-analysis` | the paper's analyses (Sections 3–8) |
//! | [`provenance`] | `starling-provenance` | decision traces, divergence witnesses |
//! | [`baselines`] | `starling-baselines` | HH91/ZH90/Ras90-analog comparators |
//! | [`workloads`] | `starling-workloads` | generators and case studies |
//!
//! ## Quickstart
//!
//! ```
//! use starling::prelude::*;
//!
//! // A schema and two rules that race on `u.x`.
//! let script = "
//!     create table t (x int);
//!     create table u (x int);
//!     create rule a on t when inserted then update u set x = 1 end;
//!     create rule b on t when inserted then update u set x = 2 end;
//! ";
//! let mut session = Session::new();
//! session.execute_script(script).unwrap();
//! let defs = session.rule_defs().to_vec();
//! let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();
//!
//! let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
//! let report = AnalysisReport::run(&ctx, &[]);
//! assert!(!report.confluence.requirement_holds()); // a and b do not commute
//! ```

pub use starling_analysis as analysis;
pub use starling_baselines as baselines;
pub use starling_engine as engine;
pub use starling_provenance as provenance;
pub use starling_sql as sql;
pub use starling_storage as storage;
pub use starling_workloads as workloads;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use starling_analysis::{
        AnalysisContext, AnalysisReport, Certifications, InteractiveSession,
    };
    pub use starling_engine::{
        explore, ExecState, ExploreConfig, FirstEligible, Outcome, Processor, RuleSet,
        SeededRandom, Session,
    };
    pub use starling_sql::{parse_script, parse_statement};
    pub use starling_storage::{Catalog, Database, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_links() {
        let mut s = Session::new();
        s.execute_script("create table t (x int); insert into t values (1)")
            .unwrap();
        assert_eq!(s.db().table("t").unwrap().len(), 1);
    }
}
