//! End-to-end case studies spanning every crate (experiments E7 and E8):
//! the power-network termination study and the iterative-confluence
//! constraint-maintenance study, each cross-checked against the oracle.

use starling::analysis::certifications::Certifications;
use starling::analysis::context::AnalysisContext;
use starling::analysis::report::AnalysisReport;
use starling::analysis::termination::{analyze_termination, TerminationVerdict};
use starling::prelude::*;
use starling::workloads::{audit, constraints, power_network};

#[test]
fn e7_power_network_termination_study() {
    let w = power_network::workload();
    let (db, defs, directives) = w.build().unwrap();
    let rules = RuleSet::compile(&defs, db.catalog()).unwrap();

    // Without certificates: the deletion cascade's cycle is found, but the
    // delete-only auto-certificates discharge it; only the load-shedding
    // self-loop needs the user certificate.
    let bare = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let t_bare = analyze_termination(&bare);
    assert!(!t_bare.cycles.is_empty(), "the cascade cycle must be found");

    let certs = Certifications::from_directives(&directives);
    let ctx = AnalysisContext::from_ruleset(&rules, certs);
    let t = analyze_termination(&ctx);
    assert_eq!(t.verdict, TerminationVerdict::GuaranteedWithCertificates);
    assert!(t.cycles.iter().all(|c| c.discharged));

    // Oracle agreement on the paper scenario.
    let g = explore(
        &rules,
        &db,
        &w.user_actions().unwrap(),
        &ExploreConfig::default(),
    )
    .unwrap();
    assert_eq!(g.terminates(), Some(true));
}

#[test]
fn e8_constraints_iterative_confluence_study() {
    let w = constraints::workload();
    let (db, defs, _) = w.build().unwrap();

    let mut session = InteractiveSession::new(db.catalog().clone(), defs);
    let initial = session.analyze("initial").unwrap();
    assert!(
        !initial.confluence.requirement_holds(),
        "the case study starts non-confluent"
    );
    let initial_violations = initial.confluence.violations.len();

    // The Section 6.4 loop converges.
    let added = session.order_until_confluent(25).unwrap();
    assert!(added.is_some(), "loop must converge");

    // Remaining self-cycles are certified (cap converges; totals
    // recomputation is idempotent).
    session.certify_terminates("cap_salary", "cap converges in one step");
    session.certify_terminates("maintain_totals", "recomputation is idempotent");
    session.certify_terminates("ri_emp_dept", "rollback ends processing");
    let final_report = session.analyze("final").unwrap();
    assert!(final_report.confluence.requirement_holds());
    assert!(final_report.termination.is_guaranteed());
    assert!(initial_violations > 0);

    // History is non-trivial: at least initial + loop rounds + final.
    assert!(session.history().len() >= 3);
}

#[test]
fn audit_workload_matches_static_and_oracle_verdicts() {
    let w = audit::workload();
    let (db, defs, _) = w.build().unwrap();
    let rules = RuleSet::compile(&defs, db.catalog()).unwrap();
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let report = AnalysisReport::run(&ctx, &[]);
    assert!(!report.observable.is_guaranteed());

    let cfg = ExploreConfig::default();
    let g = explore(&rules, &db, &w.user_actions().unwrap(), &cfg).unwrap();
    assert_eq!(g.confluent(), Some(true));
    assert_eq!(g.observably_deterministic(&cfg), Some(false));
}

/// Partial confluence (E4) across the crates: the constraints rule set is
/// not confluent overall, but is confluent with respect to the `dept`
/// table once the conflicting emp-writers are ordered... and crucially the
/// scratch-style violations on `emp` do not poison `dept`-only users.
#[test]
fn e4_partial_confluence_on_case_study() {
    let w = constraints::workload();
    let (db, defs, _) = w.build().unwrap();
    let rules = RuleSet::compile(&defs, db.catalog()).unwrap();
    let mut certs = Certifications::new();
    // Certify the benign pairs the paper's user would.
    certs.certify_terminates("cap_salary", "cap converges");
    certs.certify_terminates("maintain_totals", "idempotent");
    let ctx = AnalysisContext::from_ruleset(&rules, certs);

    let partial = starling::analysis::partial::analyze_partial_confluence(&ctx, &["dept"]);
    // Sig(dept) pulls in the totals maintainer and everything that does
    // not commute with it — the verdict is informative either way; what we
    // assert is the machinery: Sig is a subset of all rules containing the
    // dept-writer.
    assert!(partial.significant.iter().any(|r| r == "maintain_totals"));
    assert!(partial.significant.len() <= rules.len());
}
