//! Differential and invariant tests for the columnar execution path.
//!
//! Four layers of assurance for PR 7's vectorized kernels:
//!
//! 1. **Curated statement edges** — SELECTs, DELETEs, and UPDATEs aimed
//!    squarely at the vector kernels (3VL comparisons, NULL validity,
//!    BETWEEN/IN/LIKE, boolean columns, float columns on the `Mixed`
//!    representation, and fallible conjuncts that force the per-row
//!    fallback) must agree byte-for-byte across [`PlanMode::Columnar`],
//!    [`PlanMode::Row`], and the AST interpreter — including *which* error
//!    wins when evaluation fails.
//! 2. **Exploration graphs** — corpus, condition-stress, scale (small
//!    instance), and seeded-random workloads explored under all three
//!    [`EvalMode`]s must produce identical graphs and final-state digests.
//! 3. **Bitmap/Kleene invariants** — the packed selection vectors keep
//!    their past-the-end bits zero under every combinator, and
//!    [`Bool3`]'s true/false bitmaps stay disjoint under NOT/AND/OR
//!    (exactly Kleene's tables, element-wise).
//! 4. **Cached columnar views** — each table's lazily built [`TableBatch`]
//!    must mirror `Table::iter` exactly across copy-on-write snapshots and
//!    mutations (the cache is invalidated on write, never shared stale).

use std::ops::Not;

use starling::engine::{explore_with_mode, EvalMode, ExploreConfig, RuleSet};
use starling::sql::ast::{Action, Statement};
use starling::sql::eval::{eval_select, exec_action, Env, EvalCtx};
use starling::sql::parse_statement;
use starling::sql::plan::vector::Bool3;
use starling::sql::plan::{
    compile_action, compile_select, execute_action, execute_select, PlanMode,
};
use starling::storage::{Bitmap, ColumnDef, Database, TableSchema, TupleId, Value, ValueType};
use starling::workloads::{cond_stress, corpus, random, scale, CorpusEntry};

/// Fixture exercising every column representation: `Int` (non-null ints),
/// `Bool` (nullable bools), `Mixed` (a float column that also holds ints —
/// `ValueType::Float` accepts both variants), and `Str`, plus NULLs in
/// every nullable column and a zero for division errors.
fn fixture() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "w",
            vec![
                ColumnDef::new("i", ValueType::Int),
                ColumnDef::nullable("flag", ValueType::Bool),
                ColumnDef::nullable("f", ValueType::Float),
                ColumnDef::nullable("s", ValueType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "k",
            vec![
                ColumnDef::new("i", ValueType::Int),
                ColumnDef::nullable("j", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let s = |x: &str| Value::Str(x.to_owned());
    let rows = [
        (0, Value::Bool(true), Value::Float(0.5), s("abc")),
        (1, Value::Null, Value::Int(2), s("a%c")),
        (2, Value::Bool(false), Value::Float(2.5), Value::Null),
        (3, Value::Bool(true), Value::Null, s("xyz")),
        (4, Value::Null, Value::Float(-1.0), s("ab")),
    ];
    for (i, flag, f, sv) in rows {
        db.insert("w", vec![Value::Int(i), flag, f, sv]).unwrap();
    }
    let rows_k = [
        (1, Value::Int(1)),
        (2, Value::Null),
        (3, Value::Int(0)),
        (1, Value::Int(4)),
    ];
    for (i, j) in rows_k {
        db.insert("k", vec![Value::Int(i), j]).unwrap();
    }
    db
}

fn assert_select_agrees(sql: &str, db: &Database) {
    let Statement::Dml(Action::Select(sel)) = parse_statement(sql).unwrap() else {
        panic!("not a select: {sql}");
    };
    let ctx = EvalCtx {
        db,
        transitions: None,
    };
    let mut env = Env::new(&ctx);
    let interp = eval_select(&sel, &mut env);
    let (plan, slots) = compile_select(&sel, db.catalog(), None);
    for mode in [PlanMode::Columnar, PlanMode::Row] {
        let planned = execute_select(&plan, slots, db, None, mode);
        match (&interp, planned) {
            (Ok(a), Ok(b)) => assert_eq!(*a, b, "{sql} [{mode:?}]: results diverge"),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "{sql} [{mode:?}]: errors diverge"
            ),
            (a, b) => panic!("{sql} [{mode:?}]: interp {a:?} vs plan {b:?}"),
        }
    }
}

fn assert_action_agrees(sql: &str, db: &Database) {
    let Statement::Dml(action) = parse_statement(sql).unwrap() else {
        panic!("not DML: {sql}");
    };
    let mut db_interp = db.clone();
    let interp = exec_action(&action, &mut db_interp, None);
    let plan = compile_action(&action, db.catalog(), None);
    for mode in [PlanMode::Columnar, PlanMode::Row] {
        let mut db_plan = db.clone();
        let planned = execute_action(&plan, &mut db_plan, None, mode);
        match (&interp, planned) {
            (Ok(x), Ok(y)) => assert_eq!(*x, y, "{sql} [{mode:?}]: outcomes diverge"),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "{sql} [{mode:?}]: errors diverge"
            ),
            (x, y) => panic!("{sql} [{mode:?}]: interp {x:?} vs plan {y:?}"),
        }
        assert_eq!(
            db_interp.state_digest(),
            db_plan.state_digest(),
            "{sql} [{mode:?}]: final states diverge"
        );
    }
}

/// The curated kernel edges: every comparison kind over every column
/// representation, 3VL corners, and predicates the vectorizer must refuse.
#[test]
fn curated_selects_agree_across_modes() {
    let db = fixture();
    let cases = [
        // Int kernels, strict and soft comparisons.
        "select i from w where i > 1",
        "select i from w where i >= 2 and i < 4",
        "select i from w where i <> 2",
        // Bool column: direct use as a predicate, plus 3VL around NULLs.
        "select i from w where flag",
        "select i from w where not flag",
        "select i from w where flag is null",
        "select i from w where flag or i > 3",
        "select i from w where flag and i > 0",
        // Float (Mixed representation): Int and Float variants compare by
        // value even though they differ structurally.
        "select i from w where f > 1",
        "select i from w where f = 2",
        "select i from w where f < 0.6",
        "select i from w where f is not null and f <= 2.5",
        // NULL validity through BETWEEN / IN / NOT IN.
        "select i from w where f between 0 and 2",
        "select i from w where f not between 0 and 2",
        "select i from w where i in (1, 3)",
        "select i from w where f in (2, 0.5)",
        "select i from w where f not in (2, 0.5)",
        // LIKE over a nullable string column, wildcard corners included.
        "select i from w where s like 'a%'",
        "select i from w where s like 'a_c'",
        "select i from w where s not like '%b%'",
        "select i from w where s like 'a%c' or s is null",
        // Kleene conjunction/disjunction mixing UNKNOWN sources.
        "select i from w where flag or f > 1",
        "select i from w where not (flag and f > 1)",
        "select i from w where flag is not null and s is not null",
        // Constant predicates: uniform selections, both polarities.
        "select i from w where true",
        "select i from w where false",
        "select i from w where null",
        "select i from w where 1 < 2 and i > 2",
        // Non-vectorizable conjuncts alongside vectorizable ones: the
        // arithmetic is fallible, so it stays row-at-a-time while `i > 0`
        // vectorizes — and the division error at i = 0 must surface
        // identically in every mode.
        "select i from w where i + 1 > 2 and i > 0",
        "select i from w where 10 / i > 2",
        "select i from w where i > 0 and 10 / i > 2",
        // Joins with a vectorized pushdown on the probe side.
        "select w.i, k.j from w, k where w.i = k.i and w.i > 0",
        "select w.i, k.j from w, k where w.i = k.i and k.j is not null",
        "select a.i, b.i from k a, k b where a.i = b.i and a.j < b.j",
        // Subqueries force SelectPlan::Interp fallback inside conditions.
        "select i from w where exists (select * from k where k.i = w.i)",
        "select i from w where i in (select i from k where j is not null)",
    ];
    for sql in cases {
        assert_select_agrees(sql, &db);
    }
}

/// DML through the columnar scan: DELETE/UPDATE predicates classified as
/// vectorizable run through the batch filter, fallible ones fall back —
/// both must replay the interpreter exactly, partial-failure state
/// included.
#[test]
fn curated_actions_agree_across_modes() {
    let db = fixture();
    let cases = [
        "delete from w where i > 2",
        "delete from w where flag",
        "delete from w where f not between 0 and 2",
        "delete from w where s like '%b%' or s is null",
        "delete from w where 10 / i > 2",
        "update w set i = i + 10 where flag is null",
        "update w set s = 'hit' where f > 1",
        "update w set f = 0 where i in (1, 4)",
        "update k set j = j + 1 where j is not null",
        "update w set i = 10 / i where i >= 0",
    ];
    for sql in cases {
        assert_action_agrees(sql, &db);
    }
}

// ---------------------------------------------------------------------------
// Exploration graphs under all three evaluation modes.
// ---------------------------------------------------------------------------

fn graph_fingerprint(
    rules: &RuleSet,
    db: &Database,
    actions: &[Action],
    cfg: &ExploreConfig,
    mode: EvalMode,
    what: &str,
) -> (usize, usize, Vec<u64>) {
    let g = explore_with_mode(rules, db, actions, cfg, mode).unwrap();
    assert!(!g.truncated(), "{what}: exploration truncated");
    let mut digests: Vec<u64> = g
        .final_dbs
        .iter()
        .map(|(_, fdb)| fdb.state_digest())
        .collect();
    digests.sort_unstable();
    (g.states.len(), g.edges.len(), digests)
}

/// Corpus, condition-stress, small-scale, and random workloads explore to
/// identical graphs under columnar, row-plan, and interpreter evaluation.
#[test]
fn exploration_graphs_agree_across_modes() {
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);

    let mut cases: Vec<(String, RuleSet, Database, Vec<Action>)> = Vec::new();

    for entry in corpus() {
        if !matches!(
            entry.name,
            "independent" | "cascade_ordered" | "unordered_writers" | "ordered_observables"
        ) {
            continue;
        }
        let rules = entry.compile();
        let mut db = Database::new();
        for schema in CorpusEntry::catalog().tables() {
            db.create_table(schema.clone()).unwrap();
        }
        db.insert("t", vec![Value::Int(0)]).unwrap();
        db.insert("u", vec![Value::Int(0)]).unwrap();
        let Statement::Dml(action) = parse_statement("insert into t values (1)").unwrap() else {
            unreachable!()
        };
        cases.push((format!("corpus/{}", entry.name), rules, db, vec![action]));
    }

    cases.push((
        "cond/eq_join".to_owned(),
        cond_stress::join_rules(),
        cond_stress::database(),
        cond_stress::user_actions(),
    ));
    cases.push((
        "cond/scan_filter".to_owned(),
        cond_stress::filter_rules(),
        cond_stress::database(),
        cond_stress::user_actions(),
    ));

    // A small instance of the scale family — same shapes the bench runs at
    // 100k/1M rows, kept tiny here so the suite stays fast. (`rows ≡ 2
    // (mod 10)` keeps the late-match filter and every join rule live.)
    let scale_rows = 122;
    cases.push((
        "scale/filter_small".to_owned(),
        scale::filter_rules(scale_rows),
        scale::database(scale_rows),
        scale::user_actions(scale_rows),
    ));
    cases.push((
        "scale/join_small".to_owned(),
        scale::join_rules(scale_rows),
        scale::database(scale_rows),
        scale::user_actions(scale_rows),
    ));

    for seed in 0..8u64 {
        let w = random::generate(&random::RandomConfig {
            seed,
            n_rules: 5,
            ..random::RandomConfig::default()
        });
        let rules = w.compile();
        let db = w.seed_database();
        let actions = w.user_transition(0xc01a);
        cases.push((format!("random/seed{seed}"), rules, db, actions));
    }

    for (name, rules, db, actions) in &cases {
        let columnar = graph_fingerprint(rules, db, actions, &cfg, EvalMode::Columnar, name);
        let row = graph_fingerprint(rules, db, actions, &cfg, EvalMode::Plan, name);
        let interp = graph_fingerprint(rules, db, actions, &cfg, EvalMode::Interp, name);
        assert_eq!(columnar, row, "{name}: columnar vs row-plan graphs diverge");
        assert_eq!(
            columnar, interp,
            "{name}: columnar vs interp graphs diverge"
        );
    }
}

// ---------------------------------------------------------------------------
// Bitmap and Kleene-vector invariants.
// ---------------------------------------------------------------------------

/// A deterministic pseudo-random bitmap (xorshift — no external RNG).
fn pattern(len: usize, mut seed: u64) -> Bitmap {
    let mut b = Bitmap::zeros(len);
    for i in 0..len {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        b.set(i, seed & 1 == 1);
    }
    b
}

/// Every one-position a combinator reports must be in-bounds, and the
/// population count must match a per-element scan — together these pin the
/// "past-the-end bits are zero" representation invariant (a stray tail bit
/// would surface through `iter_ones`, `count_ones`, or double-`not`).
#[test]
fn bitmap_tail_bits_stay_zero() {
    for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 130] {
        let a = pattern(len, 0x9e3779b97f4a7c15 ^ len as u64);
        let b = pattern(len, 0x2545f4914f6cdd1d ^ len as u64);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        for (what, m) in [
            ("ones", Bitmap::ones(len)),
            ("not", a.not()),
            ("and", and),
            ("or", or),
            ("not-not", a.not().not()),
        ] {
            assert!(
                m.iter_ones().all(|i| i < len),
                "{what}/{len}: out-of-bounds one-position"
            );
            let scanned = (0..len).filter(|&i| m.get(i)).count();
            assert_eq!(m.count_ones(), scanned, "{what}/{len}: popcount mismatch");
            assert_eq!(m.any(), scanned > 0, "{what}/{len}: any() mismatch");
        }
        assert_eq!(a.not().not(), a, "{len}: double negation must round-trip");
        assert_eq!(Bitmap::ones(len).count_ones(), len);
    }
}

/// [`Bool3`]'s `t`/`f` bitmaps are disjoint by construction and stay
/// disjoint under NOT/AND/OR, which follow Kleene's tables element-wise.
#[test]
fn bool3_combinators_stay_disjoint_and_kleene() {
    let len = 130;
    // Three-valued element: t-bit wins, else f-bit, else UNKNOWN.
    let tri = |v: &Bool3, i: usize| -> Option<bool> {
        if v.t.get(i) {
            Some(true)
        } else if v.f.get(i) {
            Some(false)
        } else {
            None
        }
    };
    let disjoint = |v: &Bool3, what: &str| {
        let mut overlap = v.t.clone();
        overlap.and_assign(&v.f);
        assert!(!overlap.any(), "{what}: t and f overlap");
    };
    // Arbitrary disjoint three-valued vectors from seeded patterns.
    let make = |s1: u64, s2: u64| -> Bool3 {
        let t = pattern(len, s1);
        let mut f = pattern(len, s2);
        f.and_assign(&t.not());
        Bool3 { t, f }
    };
    let a = make(0xdead_beef, 0xfeed_f00d);
    let b = make(0x0123_4567, 0x89ab_cdef);
    disjoint(&a, "a");
    disjoint(&b, "b");

    let not_a = a.clone().not();
    let and = a.clone().and(&b);
    let or = a.clone().or(&b);
    disjoint(&not_a, "not a");
    disjoint(&and, "a and b");
    disjoint(&or, "a or b");

    for i in 0..len {
        let (x, y) = (tri(&a, i), tri(&b, i));
        assert_eq!(tri(&not_a, i), x.map(|v| !v), "not, element {i}");
        // Kleene AND: false dominates, then unknown.
        let expect_and = match (x, y) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        assert_eq!(tri(&and, i), expect_and, "and, element {i}");
        // Kleene OR: true dominates, then unknown.
        let expect_or = match (x, y) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        assert_eq!(tri(&or, i), expect_or, "or, element {i}");
    }

    // The uniform/unknown constructors hit the same invariants at the
    // boundaries.
    disjoint(&Bool3::unknown(len), "unknown");
    disjoint(&Bool3::uniform(len, true), "uniform true");
    disjoint(&Bool3::uniform(len, false), "uniform false");
    assert_eq!(Bool3::uniform(len, true).t.count_ones(), len);
    assert_eq!(Bool3::uniform(len, false).f.count_ones(), len);
}

// ---------------------------------------------------------------------------
// Cached columnar views under copy-on-write mutation.
// ---------------------------------------------------------------------------

/// The columnar view of `table` must replay `Table::iter` exactly: same
/// tuple ids in scan order, same row values, same NULL positions.
fn assert_view_matches(db: &Database, table: &str, what: &str) {
    let tbl = db.table(table).unwrap();
    let batch = tbl.columnar();
    assert_eq!(batch.len(), tbl.len(), "{what}: length mismatch");
    let expected: Vec<(TupleId, Vec<Value>)> = tbl.iter().map(|(id, r)| (id, r.clone())).collect();
    let got: Vec<(TupleId, Vec<Value>)> = (0..batch.len())
        .map(|pos| (batch.ids()[pos], batch.row(pos)))
        .collect();
    assert_eq!(got, expected, "{what}: columnar view diverges from rows");
}

/// Columnar views across a CoW mutation storm: every mutation kind, with a
/// snapshot held across the writes — the snapshot's view must keep showing
/// the old rows while the writer's view tracks each change.
#[test]
fn columnar_view_tracks_cow_mutation() {
    let mut db = fixture();
    assert_view_matches(&db, "w", "initial");
    assert_view_matches(&db, "k", "initial");

    let snapshot = db.clone();
    let snap_digest = snapshot.state_digest();

    // Insert, update, delete against the live handle.
    let id = db
        .insert(
            "w",
            vec![Value::Int(9), Value::Bool(false), Value::Null, Value::Null],
        )
        .unwrap();
    assert_view_matches(&db, "w", "after insert");
    db.update(
        "w",
        id,
        vec![
            Value::Int(10),
            Value::Null,
            Value::Float(3.5),
            Value::Str("z".into()),
        ],
    )
    .unwrap();
    assert_view_matches(&db, "w", "after update");
    let victim = db.table("w").unwrap().ids()[0];
    db.delete("w", victim).unwrap();
    assert_view_matches(&db, "w", "after delete");

    // A failed mutation must not disturb the view (or the snapshot).
    let wrong_arity = db.insert("w", vec![Value::Int(1)]);
    assert!(wrong_arity.is_err());
    assert_view_matches(&db, "w", "after failed insert");

    // The snapshot still sees the original five rows.
    assert_eq!(snapshot.state_digest(), snap_digest);
    assert_view_matches(&snapshot, "w", "snapshot after writer mutations");
    assert_eq!(snapshot.table("w").unwrap().len(), 5);
    assert_eq!(db.table("w").unwrap().len(), 5);
    assert_view_matches(&db, "k", "untouched table");
}
