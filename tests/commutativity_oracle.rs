//! Lemma 6.1 soundness (experiment E1): statically-commuting rule pairs
//! really produce the Figure 1 diamond.
//!
//! For generated workloads, every pair the analysis declares commutative
//! (no Lemma 6.1 condition fires) is executed both ways — consider `r_i`
//! then `r_j`, and `r_j` then `r_i` — from states where both rules are
//! triggered. The resulting paper-states `(D, TR)` must be identical
//! (compared by [`ExecState::semantic_digest`], which is tuple-id-free),
//! and so must the emitted observable events.

use starling::analysis::certifications::Certifications;
use starling::analysis::commutativity::noncommutativity_reasons;
use starling::engine::{consider_rule, EvalMode, ExecState, RuleId};
use starling::workloads::random::{generate, RandomConfig};

fn config(seed: u64) -> RandomConfig {
    RandomConfig {
        n_tables: 3,
        n_cols: 2,
        n_rules: 6,
        max_actions: 2,
        p_condition: 0.6,
        p_observable: 0.3,
        p_priority: 0.0, // priorities are irrelevant to the diamond
        rows_per_table: 2,
        seed,
    }
}

#[test]
fn statically_commuting_pairs_form_diamonds() {
    let _ = Certifications::new(); // no certifications in this experiment
    let mut pairs_checked = 0usize;
    let mut states_checked = 0usize;

    for seed in 0..80 {
        let w = generate(&config(seed));
        let rules = w.compile();
        let base_db = w.seed_database();

        // Commuting pairs per Lemma 6.1.
        let mut commuting: Vec<(usize, usize)> = Vec::new();
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                if noncommutativity_reasons(&rules.rules()[i].sig, &rules.rules()[j].sig).is_empty()
                {
                    commuting.push((i, j));
                }
            }
        }
        if commuting.is_empty() {
            continue;
        }

        for salt in 0..8u64 {
            let actions = w.user_transition(salt + 100);
            let mut working = base_db.clone();
            let Ok(ops) = starling::engine::exec_graph::apply_user_actions(&mut working, &actions)
            else {
                continue;
            };
            let state = ExecState::new(working, rules.len(), &ops);

            for &(i, j) in &commuting {
                let (ri, rj) = (RuleId(i), RuleId(j));
                if !state.is_triggered(&rules, ri) || !state.is_triggered(&rules, rj) {
                    continue;
                }
                pairs_checked += 1;
                states_checked += 1;

                let mut s1 = state.clone();
                let a1 = consider_rule(&rules, &mut s1, ri, &base_db, EvalMode::default()).unwrap();
                let b1 = consider_rule(&rules, &mut s1, rj, &base_db, EvalMode::default()).unwrap();

                let mut s2 = state.clone();
                let a2 = consider_rule(&rules, &mut s2, rj, &base_db, EvalMode::default()).unwrap();
                let b2 = consider_rule(&rules, &mut s2, ri, &base_db, EvalMode::default()).unwrap();

                assert_eq!(
                    s1.semantic_digest(&rules),
                    s2.semantic_digest(&rules),
                    "seed {seed} salt {salt}: rules {} and {} declared commutative \
                     but orders diverge\n{}",
                    rules.rules()[i].name(),
                    rules.rules()[j].name(),
                    w.script()
                );

                // Observable multiset must match too (order may differ —
                // that is observable *non*determinism, which commutativity
                // does not promise to fix).
                let mut d1: Vec<u64> = a1
                    .observables
                    .iter()
                    .chain(&b1.observables)
                    .map(|e| e.digest())
                    .collect();
                let mut d2: Vec<u64> = a2
                    .observables
                    .iter()
                    .chain(&b2.observables)
                    .map(|e| e.digest())
                    .collect();
                d1.sort_unstable();
                d2.sort_unstable();
                assert_eq!(d1, d2, "seed {seed}: observable multiset diverges");
            }
        }
    }
    assert!(
        pairs_checked > 20,
        "corpus too thin: only {pairs_checked} diamond checks ran ({states_checked} states)"
    );
}

/// The flip side: for pairs flagged noncommutative, a diamond violation is
/// actually *findable* in the corpus (the conditions are not vacuous).
#[test]
fn noncommutativity_flags_are_not_vacuous() {
    let mut divergence_found = false;
    'outer: for seed in 0..30 {
        let w = generate(&config(seed));
        let rules = w.compile();
        let base_db = w.seed_database();
        for salt in 0..4u64 {
            let actions = w.user_transition(salt + 100);
            let mut working = base_db.clone();
            let Ok(ops) = starling::engine::exec_graph::apply_user_actions(&mut working, &actions)
            else {
                continue;
            };
            let state = ExecState::new(working, rules.len(), &ops);
            for i in 0..rules.len() {
                for j in (i + 1)..rules.len() {
                    if noncommutativity_reasons(&rules.rules()[i].sig, &rules.rules()[j].sig)
                        .is_empty()
                    {
                        continue;
                    }
                    let (ri, rj) = (RuleId(i), RuleId(j));
                    if !state.is_triggered(&rules, ri) || !state.is_triggered(&rules, rj) {
                        continue;
                    }
                    let mut s1 = state.clone();
                    consider_rule(&rules, &mut s1, ri, &base_db, EvalMode::default()).unwrap();
                    consider_rule(&rules, &mut s1, rj, &base_db, EvalMode::default()).unwrap();
                    let mut s2 = state.clone();
                    consider_rule(&rules, &mut s2, rj, &base_db, EvalMode::default()).unwrap();
                    consider_rule(&rules, &mut s2, ri, &base_db, EvalMode::default()).unwrap();
                    if s1.semantic_digest(&rules) != s2.semantic_digest(&rules) {
                        divergence_found = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(
        divergence_found,
        "no flagged pair ever diverged — conditions may be vacuous"
    );
}
