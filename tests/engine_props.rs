//! Property tests on engine invariants: the priority order is a strict
//! partial order, `Choose` behaves like the paper's definition, and rule
//! processing is a *deterministic function of the strategy* (all remaining
//! nondeterminism is captured by the choice points — nothing else).

use proptest::prelude::*;

use starling::engine::{ExecState, FirstEligible, PriorityOrder, Processor, RuleId, Scripted};
use starling::workloads::random::{generate, RandomConfig};

/// Random DAG edges over `n` rules: only downward edges `(i, j)` with
/// `i < j`, so construction never fails.
fn dag_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    let all: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    proptest::sample::subsequence(all.clone(), 0..=all.len())
}

proptest! {
    /// Transitivity and irreflexivity/asymmetry of the closed order.
    #[test]
    fn priority_order_is_strict_partial_order(edges in dag_edges(7)) {
        let names: Vec<String> = (0..7).map(|i| format!("r{i}")).collect();
        let p = PriorityOrder::from_edges(&names, &edges).expect("DAG closes");
        for a in 0..7 {
            prop_assert!(!p.gt(RuleId(a), RuleId(a)), "irreflexive");
            for b in 0..7 {
                if p.gt(RuleId(a), RuleId(b)) {
                    prop_assert!(!p.gt(RuleId(b), RuleId(a)), "asymmetric");
                }
                for c in 0..7 {
                    if p.gt(RuleId(a), RuleId(b)) && p.gt(RuleId(b), RuleId(c)) {
                        prop_assert!(p.gt(RuleId(a), RuleId(c)), "transitive");
                    }
                }
            }
        }
    }

    /// Choose returns exactly the maximal elements of the input set.
    #[test]
    fn choose_returns_maximal_elements(
        edges in dag_edges(7),
        subset in proptest::sample::subsequence((0..7usize).collect::<Vec<_>>(), 1..=7),
    ) {
        let names: Vec<String> = (0..7).map(|i| format!("r{i}")).collect();
        let p = PriorityOrder::from_edges(&names, &edges).expect("DAG closes");
        let set: Vec<RuleId> = subset.iter().map(|&i| RuleId(i)).collect();
        let chosen = p.choose(&set);
        prop_assert!(!chosen.is_empty(), "finite nonempty poset has maxima");
        for &r in &set {
            let dominated = set.iter().any(|&q| p.gt(q, r));
            prop_assert_eq!(chosen.contains(&r), !dominated);
        }
    }

    /// The processor is a pure function of (workload, initial state,
    /// strategy script): replaying the same script reproduces the same
    /// final database and consideration sequence.
    #[test]
    fn processing_is_deterministic_given_strategy(
        seed in 0u64..40,
        picks in proptest::collection::vec(0usize..4, 0..30),
    ) {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 4,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.2,
            p_priority: 0.2,
            rows_per_table: 2,
            seed,
        });
        let rules = w.compile();
        let base = w.seed_database();
        let actions = w.user_transition(3);

        let run = |picks: &[usize]| {
            let mut db = base.clone();
            let ops = starling::engine::exec_graph::apply_user_actions(&mut db, &actions)
                .ok()?;
            let mut st = ExecState::new(db, rules.len(), &ops);
            let mut strategy = Scripted::new(picks.to_vec());
            let res = Processor::new(&rules)
                .with_limit(60)
                .run(&mut st, &base, &mut strategy)
                .ok()?;
            Some((
                st.db.state_digest(),
                res.considerations
                    .iter()
                    .map(|c| (c.rule.0, c.fired))
                    .collect::<Vec<_>>(),
                res.outcome,
            ))
        };

        let a = run(&picks);
        let b = run(&picks);
        prop_assert_eq!(a, b);
    }

    /// `FirstEligible` always picks the lowest-id eligible rule, so a run
    /// with it equals a run scripted with all-zero picks.
    #[test]
    fn first_eligible_equals_zero_script(seed in 0u64..40) {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 4,
            max_actions: 1,
            p_condition: 0.4,
            p_observable: 0.1,
            p_priority: 0.3,
            rows_per_table: 2,
            seed,
        });
        let rules = w.compile();
        let base = w.seed_database();
        let actions = w.user_transition(9);

        let mut db1 = base.clone();
        let Ok(ops1) = starling::engine::exec_graph::apply_user_actions(&mut db1, &actions)
        else {
            return Ok(());
        };
        let mut st1 = ExecState::new(db1, rules.len(), &ops1);
        let r1 = Processor::new(&rules)
            .with_limit(60)
            .run(&mut st1, &base, &mut FirstEligible)
            .unwrap();

        let mut db2 = base.clone();
        let ops2 = starling::engine::exec_graph::apply_user_actions(&mut db2, &actions)
            .unwrap();
        let mut st2 = ExecState::new(db2, rules.len(), &ops2);
        let mut zeros = Scripted::new(vec![]);
        let r2 = Processor::new(&rules)
            .with_limit(60)
            .run(&mut st2, &base, &mut zeros)
            .unwrap();

        prop_assert_eq!(st1.db.state_digest(), st2.db.state_digest());
        prop_assert_eq!(r1.considerations.len(), r2.considerations.len());
    }
}
