//! The shipped `scripts/*.rql` files stay loadable and behave as their
//! header comments claim (exercised through the CLI library, exactly as the
//! `starling` binary would).

use starling_cli::{
    cmd_analyze, cmd_compare, cmd_explain, cmd_explain_divergence, cmd_explore, cmd_graph, cmd_run,
    CmdStatus,
};
use starling_engine::Budget;

fn read(name: &str) -> String {
    let path = format!("{}/scripts/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn salary_rules_full_cli_surface() {
    let src = read("salary_rules.rql");
    let report = cmd_analyze(&src, &[vec!["dept".to_owned()]], false, false).unwrap();
    // Certifications are honored; cycles are discharged.
    assert!(report.contains("TERMINATION: guaranteed"), "{report}");
    assert!(
        report.contains("PARTIAL CONFLUENCE w.r.t. {dept}"),
        "{report}"
    );

    let graph = cmd_graph(&src, false).unwrap();
    assert!(graph.contains("4 rules"), "{graph}");
    assert!(cmd_graph(&src, true).unwrap().starts_with("digraph"));

    let explain = cmd_explain(&src, "maintain_totals").unwrap();
    assert!(explain.contains("Triggered-By:"), "{explain}");
    assert!(explain.contains("(U, dept.total_sal)"), "{explain}");

    let explore = cmd_explore(&src, &Budget::default(), false, false).unwrap();
    assert_eq!(explore.status, CmdStatus::Ok);
    assert!(
        explore.text.contains("terminates on all paths: yes"),
        "{}",
        explore.text
    );

    let compare = cmd_compare(&src).unwrap();
    assert!(!compare.contains("SUBSUMPTION VIOLATION"), "{compare}");

    let run = cmd_run(&src, &Budget::default()).unwrap();
    assert_eq!(run.status, CmdStatus::Ok);
    assert!(run.text.contains("rule processing"), "{}", run.text);
}

#[test]
fn masking_script_shows_the_finding() {
    let src = read("masking.rql");
    let report = cmd_analyze(&src, &[], false, false).unwrap();
    assert!(report.contains("condition 2\u{2032}"), "{report}");

    let explore = cmd_explore(&src, &Budget::default(), false, false).unwrap();
    assert!(
        explore.text.contains("distinct final DB states: 2"),
        "{}",
        explore.text
    );
}

/// The README's `explain` quick-start transcript stays true: the
/// power-network script diverges on the unordered `trip_overload` /
/// `shed_load` race, and `explain` prints a replay-checked witness
/// naming that pair.
#[test]
fn power_network_explain_emits_replay_checked_witness() {
    let src = read("power_network.rql");
    let out = cmd_explain_divergence(&src, &Budget::default(), false).unwrap();
    assert_eq!(out.status, CmdStatus::Ok);
    assert!(
        out.text.contains("2 distinct final DB state(s)"),
        "{}",
        out.text
    );
    assert!(
        out.text
            .contains("divergence witness (minimal, replay-checked)"),
        "{}",
        out.text
    );
    assert!(
        out.text.contains("shed_load vs trip_overload"),
        "{}",
        out.text
    );
    assert!(
        out.text.contains("replay reproduced both digests"),
        "{}",
        out.text
    );
}

#[test]
fn sharded_counters_oracle_confluent_despite_static_rejection() {
    let src = read("sharded_counters.rql");
    let report = cmd_analyze(&src, &[], false, false).unwrap();
    assert!(report.contains("MAY NOT BE CONFLUENT"), "{report}");

    // The Section 9 refinement proves the shards disjoint.
    let refined = cmd_analyze(&src, &[], true, false).unwrap();
    assert!(refined.contains("CONFLUENCE: guaranteed"), "{refined}");

    let explore = cmd_explore(&src, &Budget::default(), false, false).unwrap();
    assert_eq!(explore.status, CmdStatus::Ok);
    assert!(
        explore.text.contains("unique final state:      yes"),
        "{}",
        explore.text
    );
}
