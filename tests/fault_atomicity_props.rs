//! Property: transaction atomicity survives storage faults injected at
//! *every* mutating-op index (ISSUE satellite; paper §2's all-or-nothing
//! promise).
//!
//! For random rule sets and user transitions, the fault-sweep harness
//! replays the transaction with a one-shot fault before op `k` for each
//! `k = 0..N` (`N` = ops the fault-free run performs) plus an unfired
//! control at `k = N`, and requires every run to land on exactly the
//! pre-transaction snapshot (fault fired ⇒ aborted) or exactly the
//! fault-free final state (fault unfired) — never a hybrid.

use proptest::prelude::*;

use starling::workloads::fault_sweep::fault_sweep;
use starling::workloads::random::{generate, RandomConfig};

proptest! {
    #[test]
    fn injected_faults_never_leave_a_hybrid_state(
        seed in 0u64..500,
        salt in 1u64..50,
    ) {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 4,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.15,
            p_priority: 0.2,
            rows_per_table: 2,
            seed,
        });
        let report = fault_sweep(&w, salt, 40);
        prop_assert!(
            report.holds(),
            "seed {} salt {}: {:?}",
            seed,
            salt,
            report.violations
        );
        // The sweep is exhaustive, not vacuous: every pre-`N` index
        // aborted, and the control run matched the fault-free state.
        prop_assert_eq!(report.aborted as u64, report.mutating_ops);
        prop_assert_eq!(report.committed, 1);
    }
}
