//! Figures 3 and 4 of the paper, as a concrete rule program.
//!
//! The figures motivate Definition 6.5: from a state with two unordered
//! eligible rules `r_i`, `r_j`, taking `r_i` first may trigger a rule `h`
//! with priority over `r_j`; `h` must then be considered *before* `r_j` on
//! that path. The paths to a common state therefore interleave `{r_i} ∪ R1`
//! and `{r_j} ∪ R2`, and commutativity must hold pairwise across the two
//! closures — not just for the original pair.
//!
//! Concretely:
//! * `ri` inserts into `mid`, triggering `h`;
//! * `h precedes rj` (so on the `ri`-first path, `h` runs before `rj`);
//!   `h` also precedes `ri` — a triggering pair must be ordered (Corollary
//!   6.10) and ordering it this way keeps `(ri, rj)` unordered;
//! * all of {`ri`, `h`} × {`rj`} commute → the execution graph reaches a
//!   single final database state, exactly as Lemma 6.6 promises;
//! * a *noncommuting* variant (where `h` and `rj` write the same column)
//!   is correctly flagged by the closure construction AND shown divergent
//!   by the oracle.

use starling::analysis::certifications::Certifications;
use starling::analysis::confluence::{analyze_confluence, pair_closure};
use starling::analysis::context::AnalysisContext;
use starling::prelude::*;
use starling::sql::ast::Statement;

fn build(rules_src: &str) -> (Database, RuleSet) {
    let mut session = Session::new();
    session
        .execute_script(
            "create table trig (x int);
             create table mid (x int);
             create table out_a (x int);
             create table out_b (x int);
             insert into out_a values (0);
             insert into out_b values (0);",
        )
        .unwrap();
    session.commit(&mut FirstEligible).unwrap();
    let defs: Vec<_> = starling::sql::parse_script(rules_src)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();
    (session.db().clone(), rules)
}

const COMMUTING: &str = "
    create rule ri on trig when inserted
    then insert into mid values (1);
         update out_a set x = x + 1
    end;
    create rule rj on trig when inserted
    then update out_b set x = x + 10
    end;
    create rule h on mid when inserted
    then update out_a set x = x + 100
    precedes rj, ri
    end;
";

#[test]
fn figure_4_commuting_closures_reach_common_state() {
    let (db, rules) = build(COMMUTING);
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());

    // The Definition 6.5 closure for the unordered pair (ri, rj) pulls h
    // into R1 (h ∈ Triggers(ri) and h > rj).
    let (i, j) = (ctx.index_of("ri").unwrap(), ctx.index_of("rj").unwrap());
    let h = ctx.index_of("h").unwrap();
    let cl = pair_closure(&ctx, i, j);
    assert!(cl.r1.contains(&i) && cl.r1.contains(&h), "{cl:?}");
    assert_eq!(cl.r2, vec![j], "{cl:?}");

    // ri/h both commute with rj: requirement holds...
    let conf = analyze_confluence(&ctx);
    assert!(conf.requirement_holds(), "{:?}", conf.violations);

    // ...and the oracle shows the Figure 4 picture: both interleavings of
    // {ri, h} and {rj} reach one final database state.
    let user: Vec<_> = starling::sql::parse_script("insert into trig values (1)")
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::Dml(a) => Some(a),
            _ => None,
        })
        .collect();
    let g = explore(&rules, &db, &user, &ExploreConfig::default()).unwrap();
    assert_eq!(g.terminates(), Some(true));
    assert_eq!(g.confluent(), Some(true));
    // The priority made h run before rj on the ri-first path: some path
    // has the consideration order ri, h, rj.
    assert!(g.states.len() >= 4, "the graph has real interleavings");
}

const NONCOMMUTING: &str = "
    create rule ri on trig when inserted
    then insert into mid values (1)
    end;
    create rule rj on trig when inserted
    then update out_b set x = 1
    end;
    create rule h on mid when inserted
    then update out_b set x = 2
    precedes rj, ri
    end;
";

#[test]
fn figure_3_noncommuting_closure_member_breaks_confluence() {
    let (db, rules) = build(NONCOMMUTING);
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());

    // The closure flags (h, rj) — a pair that is NOT unordered-adjacent in
    // the naive sense (h and rj are ordered!), discovered only through the
    // (ri, rj) closure: exactly the paper's point.
    let conf = analyze_confluence(&ctx);
    assert!(!conf.requirement_holds());
    assert!(
        conf.violations.iter().any(|v| {
            v.pair == ("ri".to_owned(), "rj".to_owned())
                && v.conflict == ("h".to_owned(), "rj".to_owned())
        }),
        "{:?}",
        conf.violations
    );

    // Oracle: the two schedules end with out_b.x = 1 vs out_b.x = 2.
    let user: Vec<_> = starling::sql::parse_script("insert into trig values (1)")
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::Dml(a) => Some(a),
            _ => None,
        })
        .collect();
    let g = explore(&rules, &db, &user, &ExploreConfig::default()).unwrap();
    assert_eq!(g.confluent(), Some(false));
    assert_eq!(g.final_db_digests().len(), 2);
}
