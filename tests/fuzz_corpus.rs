//! Replays the pinned fuzz-reproducer corpus on every `cargo test` run.
//!
//! `tests/fuzz_corpus/*.star` holds shrunk counterexamples from past fuzz
//! campaigns (and hand-pinned shapes worth keeping hot). Each file is a
//! plain loader-convention script with a `--` comment header; replaying it
//! through every differential oracle turns a once-found disagreement into a
//! permanent regression test. `starling fuzz` writes new reproducers into
//! this directory by default when run from the repo root.

use std::path::{Path, PathBuf};

use starling_fuzz::{corpus, run_fuzz, FuzzConfig};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus")
}

/// Every pinned reproducer must replay clean: the disagreement it once
/// witnessed stays fixed.
#[test]
fn pinned_reproducers_replay_clean() {
    let budget = FuzzConfig::default().budget;
    let replayed = corpus::replay_dir(&corpus_dir(), &budget).expect("read corpus dir");
    assert!(
        !replayed.is_empty(),
        "fuzz corpus is empty — expected pinned .star reproducers in {}",
        corpus_dir().display()
    );
    for (path, outcome) in replayed {
        assert!(
            outcome.disagreement.is_none(),
            "pinned reproducer {} disagrees again: {:?}",
            path.display(),
            outcome.disagreement
        );
    }
}

/// A small fixed-seed campaign as part of the default test suite: shipped
/// code must produce zero disagreements, and the report must be a pure
/// function of the seed.
#[test]
fn seed_zero_campaign_is_clean_and_deterministic() {
    let config = FuzzConfig {
        cases: 25,
        ..FuzzConfig::default()
    };
    let a = run_fuzz(config.clone());
    let b = run_fuzz(config);
    assert!(a.ok(), "{}", a.render());
    assert_eq!(
        a.render(),
        b.render(),
        "campaign report is not deterministic"
    );
}
