//! Equivalence properties for the incremental analyzer (§6.4 loop).
//!
//! Drives fuzz-generated rule programs through random refinement
//! sessions — certify/revoke, order/unorder, drop/re-add, refinement
//! toggles — and after **every** step checks that
//!
//! 1. the incremental report is byte-identical (JSON and Display) to a
//!    from-scratch [`AnalysisReport::run`] on the same inputs, and
//! 2. the parallel analyzer ([`IncrementalAnalysis::new`]) and the
//!    sequential one ([`IncrementalAnalysis::sequential`]) agree, so
//!    thread scheduling cannot leak into reports.
//!
//! Seeds are pinned: failures reproduce exactly in CI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starling_analysis::context::AnalysisContext;
use starling_analysis::report::AnalysisReport;
use starling_analysis::{Certifications, IncrementalAnalysis};
use starling_engine::RuleSet;
use starling_fuzz::{generate, GenConfig};
use starling_sql::RuleDef;
use starling_storage::Catalog;

fn scratch(
    cat: &Catalog,
    defs: &[RuleDef],
    certs: &Certifications,
    refine: bool,
    protect: &[Vec<String>],
) -> AnalysisReport {
    let rs = RuleSet::compile(defs, cat).unwrap();
    let mut ctx = AnalysisContext::from_ruleset(&rs, certs.clone());
    if refine {
        ctx = ctx.with_refinement();
    }
    AnalysisReport::run(&ctx, protect)
}

/// One random mutation of the editing state. Returns a label for failure
/// messages; mutations that would not compile (priority cycles) are
/// reverted, which keeps the walk deterministic per seed.
#[allow(clippy::too_many_arguments)]
fn mutate(
    rng: &mut StdRng,
    defs: &mut Vec<RuleDef>,
    cat: &Catalog,
    certs: &mut Certifications,
    refine: &mut bool,
    certified: &mut Vec<(String, String)>,
    dropped: &mut Vec<RuleDef>,
    last: &AnalysisReport,
) -> String {
    match rng.gen_range(0..6u32) {
        0 => {
            // Certify: prefer a real outstanding conflict, like a §6.4 user.
            let (a, b) = match last.confluence.violations.first() {
                Some(v) => v.conflict.clone(),
                None => {
                    let i = rng.gen_range(0..defs.len());
                    let j = rng.gen_range(0..defs.len());
                    (defs[i].name.clone(), defs[j].name.clone())
                }
            };
            certs.certify_commute(&a, &b);
            certified.push((a.clone(), b.clone()));
            format!("certify {a}~{b}")
        }
        1 => match certified.pop() {
            Some((a, b)) => {
                certs.revoke_commute(&a, &b);
                format!("revoke {a}~{b}")
            }
            None => "revoke (nothing certified)".to_owned(),
        },
        2 => {
            // Order: a fresh low→high precedes edge can never close a cycle
            // on its own, but the generated program already has edges, so
            // compile-check and revert if one forms.
            let i = rng.gen_range(0..defs.len().saturating_sub(1));
            let j = rng.gen_range(i + 1..defs.len());
            let target = defs[j].name.clone();
            if defs[i].precedes.contains(&target) {
                return "order (edge existed)".to_owned();
            }
            defs[i].precedes.push(target.clone());
            if RuleSet::compile(defs, cat).is_err() {
                defs[i].precedes.pop();
                return "order (reverted, cycle)".to_owned();
            }
            format!("order {} > {target}", defs[i].name)
        }
        3 => {
            let candidates: Vec<usize> = (0..defs.len())
                .filter(|&i| !defs[i].precedes.is_empty())
                .collect();
            match candidates.first() {
                Some(&i) => {
                    let gone = defs[i].precedes.pop().unwrap();
                    format!("unorder {} > {gone}", defs[i].name)
                }
                None => "unorder (no edges)".to_owned(),
            }
        }
        4 if defs.len() > 2 => {
            // Drop a random rule, stripping dangling ordering references.
            let i = rng.gen_range(0..defs.len());
            let victim = defs.remove(i);
            for d in defs.iter_mut() {
                d.precedes.retain(|n| n != &victim.name);
                d.follows.retain(|n| n != &victim.name);
            }
            let label = format!("drop {}", victim.name);
            dropped.push(victim);
            label
        }
        5 => match dropped.pop() {
            Some(mut back) => {
                // Its own ordering lists may name since-dropped rules.
                let known: Vec<String> = defs.iter().map(|d| d.name.clone()).collect();
                back.precedes.retain(|n| known.contains(n));
                back.follows.retain(|n| known.contains(n));
                let label = format!("re-add {}", back.name);
                defs.push(back);
                if RuleSet::compile(defs, cat).is_err() {
                    dropped.push(defs.pop().unwrap());
                    return "re-add (reverted, cycle)".to_owned();
                }
                label
            }
            None => {
                *refine = !*refine;
                format!("toggle refine -> {refine}")
            }
        },
        _ => {
            *refine = !*refine;
            format!("toggle refine -> {refine}")
        }
    }
}

/// Runs one seeded refinement session over `cfg`, checking all three
/// analyzers against each other after every step.
fn session(seed: u64, cfg: &GenConfig, steps: usize) {
    let case = generate(seed, cfg);
    let cat = case.catalog();
    let mut defs = case.defs;
    let mut certs = Certifications::new();
    let mut refine = false;
    let protect = vec![vec![case.tables[0].name.clone()]];
    let mut certified = Vec::new();
    let mut dropped = Vec::new();
    let mut par = IncrementalAnalysis::new();
    let mut seq = IncrementalAnalysis::sequential();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);

    let mut last = scratch(&cat, &defs, &certs, refine, &protect);
    for step in 0..=steps {
        let label = if step == 0 {
            "initial".to_owned()
        } else {
            mutate(
                &mut rng,
                &mut defs,
                &cat,
                &mut certs,
                &mut refine,
                &mut certified,
                &mut dropped,
                &last,
            )
        };
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        let got_par = par.analyze(&rs, &certs, refine, &protect);
        let got_seq = seq.analyze(&rs, &certs, refine, &protect);
        let want = scratch(&cat, &defs, &certs, refine, &protect);
        let ctx = format!("seed {seed} step {step} ({label})");
        assert_eq!(
            got_par.to_json().to_string(),
            want.to_json().to_string(),
            "incremental(parallel) != from-scratch json at {ctx}"
        );
        assert_eq!(
            got_par.to_string(),
            want.to_string(),
            "incremental(parallel) != from-scratch display at {ctx}"
        );
        assert_eq!(
            got_seq.to_json().to_string(),
            want.to_json().to_string(),
            "incremental(sequential) != from-scratch json at {ctx}"
        );
        last = want;
    }
    // The walk must actually have exercised the incremental path — a
    // suite where every step falls back to a full sweep proves nothing.
    assert!(
        par.stats().incremental_sweeps >= 2,
        "seed {seed}: walk never went incremental: {:?}",
        par.stats()
    );
}

/// Dense-priority programs (≤ 64 rules draw the exhaustive ordering pass):
/// observables, rollbacks, and conditions all enabled.
#[test]
fn incremental_matches_scratch_dense_programs() {
    let cfg = GenConfig {
        max_rules: 30,
        min_rules: 30,
        // Plenty of tables: at 30 rules on few tables the triggering graph
        // is near-complete and termination's cycle enumeration, not the
        // code under test, dominates the suite's runtime.
        max_tables: 15,
        max_rows: 0,
        ..GenConfig::default()
    };
    for seed in [11, 13, 14] {
        session(seed, &cfg, 12);
    }
}

/// Sparse-priority programs above the dense-ordering limit, big enough
/// (≥ 4096 pairs) that the parallel analyzer's cold prewarm actually
/// spawns threads — this is the parallel ≡ sequential determinism check.
#[test]
fn incremental_matches_scratch_sparse_programs() {
    let cfg = GenConfig::scaled(120);
    for seed in [21, 22] {
        session(seed, &cfg, 8);
    }
}
