//! Validation of Lemma 4.1 (Properties of Execution Graphs) on concretely
//! explored graphs.
//!
//! For any edge `(D1, TR1) --r--> (D2, TR2)` the lemma states:
//!
//! 1. `r ∈ Choose(TR1)` — the considered rule was triggered and maximal
//!    under the priority order;
//! 2. `O' ⊆ Performs(r)` — everything executed was statically predicted;
//!    if the condition was false, `O' = ∅`;
//! 3. `TR2` derives from `TR1` by removing `r`, removing a subset of
//!    `Can-Untrigger(O')`, and adding rules with `O' ∩ Triggered-By ≠ ∅`:
//!    * every rule newly triggered (in `TR2 \ TR1`) has
//!      `O' ∩ Triggered-By(r') ≠ ∅`;
//!    * every rule dropped (in `TR1 \ TR2`) is `r` itself or in
//!      `Can-Untrigger(O')`.
//!
//! These are checked on every edge of every explored graph over a seeded
//! corpus — a mechanized version of the paper's "follows directly from the
//! semantics" claim.

use std::collections::BTreeSet;

use starling::analysis::certifications::Certifications;
use starling::analysis::context::AnalysisContext;
use starling::engine::{explore_from_ops, ExploreConfig, RuleId};
use starling::workloads::random::{generate, RandomConfig};

#[test]
fn lemma_4_1_holds_on_every_explored_edge() {
    let cfg = ExploreConfig::default()
        .with_max_states(800)
        .with_max_paths(1);
    let mut edges_checked = 0usize;

    for seed in 0..50u64 {
        let w = generate(&RandomConfig {
            n_tables: 4,
            n_cols: 2,
            n_rules: 4,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.2,
            p_priority: 0.4,
            rows_per_table: 2,
            seed,
        });
        let rules = w.compile();
        let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
        let base_db = w.seed_database();
        let actions = w.user_transition(13);
        let mut working = base_db.clone();
        let Ok(ops) = starling::engine::exec_graph::apply_user_actions(&mut working, &actions)
        else {
            continue;
        };
        let g = explore_from_ops(&rules, &base_db, working, &ops, &cfg).unwrap();

        for edge in &g.edges {
            edges_checked += 1;
            let tr1: BTreeSet<RuleId> = g.states[edge.from].triggered.iter().copied().collect();
            let tr2: BTreeSet<RuleId> = g.states[edge.to].triggered.iter().copied().collect();
            let r = edge.rule;
            let sig = &rules.get(r).sig;

            // Property 1: r ∈ Choose(TR1).
            let triggered_vec: Vec<RuleId> = tr1.iter().copied().collect();
            let eligible = rules.priority().choose(&triggered_vec);
            assert!(
                eligible.contains(&r),
                "seed {seed}: considered rule {r} not in Choose(TR1)\n{}",
                w.script()
            );

            // Property 2: O' ⊆ Performs(r); empty if the condition failed.
            if !edge.fired {
                assert!(
                    edge.ops.is_empty(),
                    "seed {seed}: unfired rule executed ops"
                );
            }
            for op in &edge.ops {
                assert!(
                    sig.performs.contains(op),
                    "seed {seed}: executed {op} not in Performs({})",
                    sig.name
                );
            }

            // Rollback edges clear TR wholesale; the TR2-derivation clauses
            // do not apply.
            if edge.rolled_back {
                assert!(tr2.is_empty(), "seed {seed}: rollback left triggered rules");
                continue;
            }

            // Property 3a: newly triggered rules are explained by O'.
            for &added in tr2.difference(&tr1) {
                let tb = &rules.get(added).sig.triggered_by;
                assert!(
                    edge.ops.iter().any(|op| tb.contains(op)),
                    "seed {seed}: rule {added} appeared in TR2 without a triggering op in O'"
                );
            }
            // ... and r itself, if re-triggered, is explained by O'.
            if tr2.contains(&r) {
                assert!(
                    edge.ops.iter().any(|op| sig.triggered_by.contains(op)),
                    "seed {seed}: {r} re-triggered without its op in O'"
                );
            }

            // Property 3b: dropped rules are r or untriggerable by O'.
            let can_untrigger: Vec<usize> = ctx.can_untrigger(edge.ops.iter());
            for &dropped in tr1.difference(&tr2) {
                assert!(
                    dropped == r || can_untrigger.contains(&dropped.0),
                    "seed {seed}: rule {dropped} vanished from TR without being \
                     considered or untriggerable by O' = {:?}",
                    edge.ops
                );
            }
        }
    }
    assert!(
        edges_checked > 300,
        "corpus too thin: only {edges_checked} edges checked"
    );
}
