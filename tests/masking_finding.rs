//! **Reproduction finding**: under the strict Section 2 operational
//! semantics — per-rule composite transitions since last consideration,
//! composed by the \[WF90\] net-effect rules — the commutativity conditions
//! of Lemma 6.1 miss one interaction channel:
//!
//! > an *insert* by one rule can sit in an already-considered rule's
//! > transition window and **annihilate a later delete** (net-effect rule
//! > 4: insert∘delete = nothing), changing whether that rule re-triggers.
//!
//! `Can-Untrigger` (condition 2) covers the dual direction (deletes
//! cancelling triggering inserts) but nothing covers inserts *masking*
//! triggering deletes. This file exhibits a three-rule counterexample whose
//! pairs all satisfy the paper's requirements (Confluence Requirement
//! holds, termination discharged by a delete-only certificate), yet the
//! exhaustive oracle reaches **two distinct final states**.
//!
//! The paper's proofs are sound for its Section 4 model, whose states track
//! only *triggered* rules and their transition tables — the partially
//! accumulated window of an untriggered rule is not part of the state, so
//! the model cannot express the masking. The gap is between the Section 2
//! prose semantics and the Section 4 formal model.
//!
//! Starling therefore adds a **condition 2′** (`InsertMasksDelete`) to its
//! default commutativity test, restoring soundness for the operational
//! semantics; `noncommutativity_reasons_lemma61` preserves the paper-exact
//! conditions for fidelity experiments like this one.

use starling::analysis::certifications::Certifications;
use starling::analysis::commutativity::{
    noncommutativity_reasons, noncommutativity_reasons_lemma61, NoncommutativityReason,
};
use starling::analysis::confluence::analyze_confluence;
use starling::analysis::context::AnalysisContext;
use starling::analysis::termination::{analyze_termination, TerminationVerdict};
use starling::prelude::*;
use starling::sql::ast::Statement;

const SETUP: &str = "
    create table t0 (x int);
    create table t1 (y int);
    create table t2 (z int);
    insert into t0 values (5);
    insert into t1 values (0);
";

/// rule_a and rule_c are the unordered branching pair. Per Lemma 6.1 they
/// commute: rule_a only inserts into t0 and reads nothing; rule_c is
/// triggered by deletes from t0, writes t1.y, reads t1.y.
const RULES: &str = "
    create rule rule_a on t2 when inserted
    then insert into t0 values (8)
    precedes rule_d
    end;

    create rule rule_c on t0 when deleted
    then update t1 set y = y + 1
    precedes rule_d
    end;

    create rule rule_d on t1 when updated(y)
    then delete from t0
    end;
";

const USER: &str = "
    delete from t0;
    insert into t2 values (1);
";

fn build() -> (Database, RuleSet) {
    let mut session = Session::new();
    session.execute_script(SETUP).unwrap();
    session.commit(&mut FirstEligible).unwrap();
    let defs: Vec<_> = starling::sql::parse_script(RULES)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();
    (session.db().clone(), rules)
}

fn user_actions() -> Vec<starling::sql::ast::Action> {
    starling::sql::parse_script(USER)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::Dml(a) => Some(a),
            _ => None,
        })
        .collect()
}

/// The paper-exact analysis accepts this rule set...
#[test]
fn paper_exact_analysis_accepts_the_counterexample() {
    let (_db, rules) = build();
    let a = rules.by_name("rule_a").unwrap();
    let c = rules.by_name("rule_c").unwrap();

    // Lemma 6.1 (conditions 1–6 exactly as published): rule_a and rule_c
    // commute.
    assert!(
        noncommutativity_reasons_lemma61(&a.sig, &c.sig).is_empty(),
        "Lemma 6.1 declares the branching pair commutative"
    );

    // Termination: the rule_c <-> rule_d cycle is discharged by rule_d's
    // delete-only certificate (nobody on the cycle inserts into t0).
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let term = analyze_termination(&ctx);
    assert_eq!(term.verdict, TerminationVerdict::GuaranteedWithCertificates);
}

/// ...but the oracle refutes confluence under the operational semantics.
#[test]
fn oracle_refutes_confluence_of_the_counterexample() {
    let (db, rules) = build();
    let cfg = ExploreConfig::default();
    let g = explore(&rules, &db, &user_actions(), &cfg).unwrap();
    assert_eq!(g.terminates(), Some(true), "execution does terminate");
    assert_eq!(
        g.confluent(),
        Some(false),
        "consideration order must leak through insert-masking"
    );
    assert_eq!(
        g.final_db_digests().len(),
        2,
        "t1.y differs by one between the two schedules"
    );
}

/// Starling's default conditions close the gap: condition 2′ flags the
/// pair, so the Confluence Requirement is (correctly) violated.
#[test]
fn default_analysis_rejects_via_condition_2_prime() {
    let (_db, rules) = build();
    let a = rules.by_name("rule_a").unwrap();
    let c = rules.by_name("rule_c").unwrap();
    let reasons = noncommutativity_reasons(&a.sig, &c.sig);
    assert!(
        reasons
            .iter()
            .any(|r| matches!(r, NoncommutativityReason::InsertMasksDelete { .. })),
        "{reasons:?}"
    );

    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let conf = analyze_confluence(&ctx);
    assert!(!conf.requirement_holds());
}
