//! Property-based tests on the core algebras: the net-effect composition of
//! \[WF90\], canonical digests, and parser/printer round-trips.

use proptest::prelude::*;

use starling::engine::{NetEffect, TupleOp};
use starling::sql::{parse_expr, parse_statement};
use starling::storage::{CanonicalDigest, TupleId, Value};

/// A well-formed per-tuple operation history: insert? -> update* -> delete?
/// (tuple ids are unique and never resurrected).
fn tuple_history(id: u64) -> impl Strategy<Value = Vec<TupleOp>> {
    let val = any::<i8>().prop_map(|v| Value::Int(v as i64));
    (
        any::<bool>(),                    // starts with insert (fresh tuple)?
        prop::collection::vec(val, 0..4), // update chain values
        any::<bool>(),                    // ends with delete?
        any::<i8>(),                      // base value for pre-existing tuples
    )
        .prop_map(move |(insert, updates, delete, base)| {
            let mut ops = Vec::new();
            let mut current = Value::Int(base as i64);
            if insert {
                ops.push(TupleOp::Insert {
                    table: "t".into(),
                    id: TupleId(id),
                    row: vec![current.clone()],
                });
            }
            for v in updates {
                ops.push(TupleOp::Update {
                    table: "t".into(),
                    id: TupleId(id),
                    old: vec![current.clone()],
                    new: vec![v.clone()],
                    cols: std::iter::once("a".to_owned()).collect(),
                });
                current = v;
            }
            if delete {
                ops.push(TupleOp::Delete {
                    table: "t".into(),
                    id: TupleId(id),
                    old: vec![current],
                });
            }
            ops
        })
}

/// Interleaves several tuples' histories (keeping each tuple's internal
/// order, which is all the algebra requires).
fn op_sequences() -> impl Strategy<Value = Vec<TupleOp>> {
    prop::collection::vec(any::<u8>(), 1..4).prop_flat_map(|ids| {
        let hists: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k, _)| tuple_history(k as u64 + 1))
            .collect();
        hists.prop_map(|hs| hs.into_iter().flatten().collect::<Vec<TupleOp>>())
    })
}

proptest! {
    /// Splitting the sequence anywhere and composing incrementally equals
    /// composing the whole sequence (the engine relies on this: per-rule
    /// cursors absorb suffixes incrementally).
    #[test]
    fn net_effect_split_composition(ops in op_sequences(), split_frac in 0.0f64..1.0) {
        let split = ((ops.len() as f64) * split_frac) as usize;
        let whole = NetEffect::from_ops(&ops);
        let mut inc = NetEffect::new();
        inc.absorb_all(&ops[..split]);
        inc.absorb_all(&ops[split..]);
        prop_assert_eq!(&whole, &inc);
        prop_assert_eq!(whole.digest(), inc.digest());
    }

    /// A tuple inserted and deleted within one transition vanishes
    /// entirely (paper rule 4), regardless of intervening updates.
    #[test]
    fn insert_then_delete_vanishes(updates in prop::collection::vec(any::<i8>(), 0..5)) {
        let mut ops = vec![TupleOp::Insert {
            table: "t".into(),
            id: TupleId(1),
            row: vec![Value::Int(0)],
        }];
        let mut cur = Value::Int(0);
        for v in updates {
            let next = Value::Int(v as i64);
            ops.push(TupleOp::Update {
                table: "t".into(),
                id: TupleId(1),
                old: vec![cur.clone()],
                new: vec![next.clone()],
                cols: std::iter::once("a".to_owned()).collect(),
            });
            cur = next;
        }
        ops.push(TupleOp::Delete {
            table: "t".into(),
            id: TupleId(1),
            old: vec![cur],
        });
        prop_assert!(NetEffect::from_ops(&ops).is_empty());
    }

    /// Digest equality follows structural equality on net effects.
    #[test]
    fn digest_respects_equality(a in op_sequences(), b in op_sequences()) {
        let na = NetEffect::from_ops(&a);
        let nb = NetEffect::from_ops(&b);
        if na == nb {
            prop_assert_eq!(na.digest(), nb.digest());
        }
    }
}

// ---------------------------------------------------------------------
// Parser round-trips over generated expression strings.
// ---------------------------------------------------------------------

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<u16>().prop_map(|v| v.to_string()),
        Just("null".to_owned()),
        "[a-z]{1,6}".prop_map(|s| format!("'{s}'")),
    ]
}

/// Arithmetic-level expressions (operands of comparisons).
fn arith_string() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![literal(), "[a-z]{1,5}".prop_map(|c| format!("x_{c}"))];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} * {b})")),
        ]
    })
}

/// Boolean-level expressions: predicates over arithmetic operands,
/// composed with and/or/not — matching the grammar's (and SQL's) typing.
fn expr_string() -> impl Strategy<Value = String> {
    let pred = prop_oneof![
        (arith_string(), arith_string()).prop_map(|(a, b)| format!("({a} < {b})")),
        (arith_string(), arith_string()).prop_map(|(a, b)| format!("({a} = {b})")),
        arith_string().prop_map(|a| format!("{a} is not null")),
        (arith_string(), arith_string(), arith_string())
            .prop_map(|(a, b, c)| format!("{a} between {b} and {c}")),
    ];
    pred.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
            inner.clone().prop_map(|a| format!("(not {a})")),
        ]
    })
}

proptest! {
    /// print(parse(e)) re-parses to the same AST.
    #[test]
    fn expr_print_parse_fixpoint(src in expr_string()) {
        let ast = parse_expr(&src).expect("generated expr parses");
        let printed = ast.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` failed to reparse: {e}"));
        prop_assert_eq!(ast, reparsed);
    }

    /// Statement printing round-trips for generated inserts.
    #[test]
    fn insert_print_parse_fixpoint(
        vals in prop::collection::vec(any::<i32>(), 1..5)
    ) {
        let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
        let src = format!("insert into t values ({})", items.join(", "));
        let ast = parse_statement(&src).unwrap();
        let reparsed = parse_statement(&ast.to_string()).unwrap();
        prop_assert_eq!(ast, reparsed);
    }
}

/// Byte-exact pin of the shrunk input recorded in
/// `net_effect_props.proptest-regressions` (the vendored proptest stub
/// replays the seed stream, not the historical bytes — see DESIGN.md
/// §"regression seeds"). The original failure was the *test grammar*
/// emitting a predicate as an arithmetic operand; the fix typed the
/// grammar (predicates compose only under and/or/not). The parser's side
/// of that contract — rejecting `is not null` inside an arithmetic
/// context instead of mis-parsing it — is what this pin keeps visible.
#[test]
fn regression_is_not_null_inside_addition_is_rejected() {
    let src = "(0 is not null + 0)";
    let err = parse_expr(src).expect_err("ill-typed pinned input must not parse");
    assert!(
        err.to_string().contains('+'),
        "rejection should point at the `+` after the predicate, got: {err}"
    );
}

/// Guards the replay plumbing itself: if the sibling
/// `.proptest-regressions` file stops being found (cwd drift in CI, a
/// rename), the properties above would silently skip their pinned seeds.
#[test]
fn regression_seed_file_is_discovered() {
    let seeds = proptest::persistence::regression_seeds(file!());
    assert!(
        !seeds.is_empty(),
        "tests/net_effect_props.proptest-regressions was not found or has no `cc` lines"
    );
}
