//! Soundness of the static analyses against the execution-graph oracle
//! (experiments E2, E3, E5 of `EXPERIMENTS.md`).
//!
//! The analyses are conservative: a **guaranteed** verdict must hold on
//! every concrete execution. The oracle exhaustively explores all
//! scheduling choices for sampled initial states, so:
//!
//! * static `termination: Guaranteed` ⇒ no sampled graph may have a cycle;
//! * static confluence (requirement + termination) ⇒ no sampled graph may
//!   have two distinct final database states;
//! * static observable determinism ⇒ no sampled graph may have two
//!   distinct observable streams.
//!
//! The converse direction (conservatism) is *measured*, not asserted — see
//! the benches.

use starling::analysis::certifications::Certifications;
use starling::analysis::confluence::analyze_confluence;
use starling::analysis::context::AnalysisContext;
use starling::analysis::observable::analyze_observable_determinism;
use starling::analysis::termination::{analyze_termination, TerminationVerdict};
use starling::engine::{explore_from_ops, ExploreConfig};
use starling::workloads::random::{generate, RandomConfig};

fn small_config(seed: u64) -> RandomConfig {
    // Calibrated so the corpus contains statically-accepted rule sets for
    // every property (probed: ~2/3 terminate, ~1/6 confluent, ~2/3
    // observably deterministic at these densities).
    RandomConfig {
        n_tables: 4,
        n_cols: 2,
        n_rules: 4,
        max_actions: 2,
        p_condition: 0.5,
        p_observable: 0.2,
        p_priority: 0.4,
        rows_per_table: 2,
        seed,
    }
}

struct Stats {
    term_guaranteed: usize,
    conf_guaranteed: usize,
    obs_guaranteed: usize,
    graphs: usize,
    truncated: usize,
}

#[test]
fn static_guarantees_hold_on_the_oracle() {
    let cfg = ExploreConfig::default()
        .with_max_states(2_000)
        .with_max_paths(20_000);
    let mut stats = Stats {
        term_guaranteed: 0,
        conf_guaranteed: 0,
        obs_guaranteed: 0,
        graphs: 0,
        truncated: 0,
    };

    for seed in 0..60 {
        let w = generate(&small_config(seed));
        let rules = w.compile();
        let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());

        let term = analyze_termination(&ctx);
        let conf = analyze_confluence(&ctx);
        let obs = analyze_observable_determinism(&ctx);
        let term_ok = term.verdict == TerminationVerdict::Guaranteed;
        let conf_ok = conf.requirement_holds() && term.is_guaranteed();
        let obs_ok = obs.is_guaranteed();
        stats.term_guaranteed += usize::from(term_ok);
        stats.conf_guaranteed += usize::from(conf_ok);
        stats.obs_guaranteed += usize::from(obs_ok);

        // Nothing guaranteed means nothing to refute: skip the (possibly
        // expensive, nonterminating) exploration.
        if !(term_ok || conf_ok || obs_ok) {
            continue;
        }

        let base_db = w.seed_database();
        for salt in 0..3u64 {
            let actions = w.user_transition(salt.wrapping_mul(0x9e37) + 1);
            let mut working = base_db.clone();
            let Ok(ops) = starling::engine::exec_graph::apply_user_actions(&mut working, &actions)
            else {
                continue; // e.g. transition violates a NOT NULL — skip probe
            };
            let g =
                explore_from_ops(&rules, &base_db, working, &ops, &cfg).expect("exploration runs");
            stats.graphs += 1;
            if g.truncated() {
                stats.truncated += 1;
            }

            if term_ok {
                assert_ne!(
                    g.terminates(),
                    Some(false),
                    "seed {seed} salt {salt}: static termination refuted by oracle\n{}",
                    w.script()
                );
            }
            if conf_ok {
                assert_ne!(
                    g.confluent(),
                    Some(false),
                    "seed {seed} salt {salt}: static confluence refuted by oracle\n{}",
                    w.script()
                );
            }
            if obs_ok && term_ok {
                assert_ne!(
                    g.observably_deterministic(&cfg),
                    Some(false),
                    "seed {seed} salt {salt}: static observable determinism refuted\n{}",
                    w.script()
                );
            }
        }
    }

    // Sanity: the corpus is not vacuous — some rule sets are accepted by
    // each analysis and most explorations complete.
    assert!(stats.term_guaranteed > 3, "{}", stats.term_guaranteed);
    assert!(stats.conf_guaranteed > 0, "{}", stats.conf_guaranteed);
    assert!(stats.obs_guaranteed > 0, "{}", stats.obs_guaranteed);
    assert!(stats.graphs > 60, "{}", stats.graphs);
    assert!(
        stats.truncated * 2 < stats.graphs,
        "too many truncated explorations: {}/{}",
        stats.truncated,
        stats.graphs
    );
}

/// Conservatism exists and is visible: some rule set is rejected statically
/// yet behaves fine on a sampled state (the price of decidability).
#[test]
fn conservatism_is_observable_in_the_corpus() {
    let cfg = ExploreConfig::default()
        .with_max_states(2_000)
        .with_max_paths(20_000);
    let mut found = false;
    for seed in 0..120 {
        let w = generate(&small_config(seed));
        let rules = w.compile();
        let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
        let conf = analyze_confluence(&ctx);
        let term = analyze_termination(&ctx);
        if conf.requirement_holds() || !term.is_guaranteed() {
            continue;
        }
        let base_db = w.seed_database();
        let actions = w.user_transition(7);
        let mut working = base_db.clone();
        let Ok(ops) = starling::engine::exec_graph::apply_user_actions(&mut working, &actions)
        else {
            continue;
        };
        let g = explore_from_ops(&rules, &base_db, working, &ops, &cfg).unwrap();
        if g.confluent() == Some(true) {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "expected at least one statically-rejected but concretely-confluent case"
    );
}
