//! Correctness of partitioned analysis (paper §9): analyzing each
//! independent partition separately must agree with whole-set analysis —
//! "although rules from different partitions are processed at the same time
//! and their execution may be interleaved, they have no effect on each
//! other".

use starling::analysis::confluence::analyze_confluence;
use starling::analysis::partition::{partition_rules, IncrementalAnalyzer};
use starling::analysis::termination::analyze_termination;

#[test]
fn partitioned_verdicts_equal_whole_set_verdicts() {
    for k in [2usize, 4, 6] {
        let ctx = starling_bench_helpers::partitioned_context(k);
        let whole_term = analyze_termination(&ctx);
        let whole_conf = analyze_confluence(&ctx);

        let mut inc = IncrementalAnalyzer::new();
        let parts = inc.analyze(&ctx);
        assert_eq!(parts.len(), k);

        // Every cycle the whole-set analysis finds lives in exactly one
        // partition, and vice versa.
        let whole_cycles: std::collections::BTreeSet<Vec<String>> =
            whole_term.cycles.iter().map(|c| c.rules.clone()).collect();
        let part_cycles: std::collections::BTreeSet<Vec<String>> = parts
            .iter()
            .flat_map(|p| p.termination.cycles.iter().map(|c| c.rules.clone()))
            .collect();
        assert_eq!(whole_cycles, part_cycles, "k = {k}");

        // Confluence violations likewise.
        let whole_viol: std::collections::BTreeSet<(String, String)> = whole_conf
            .violations
            .iter()
            .map(|v| v.conflict.clone())
            .collect();
        let part_viol: std::collections::BTreeSet<(String, String)> = parts
            .iter()
            .flat_map(|p| p.confluence.violations.iter().map(|v| v.conflict.clone()))
            .collect();
        assert_eq!(whole_viol, part_viol, "k = {k}");

        // Aggregate verdicts agree.
        assert_eq!(
            whole_term.is_guaranteed(),
            parts.iter().all(|p| p.termination.is_guaranteed()),
            "k = {k}"
        );
        assert_eq!(
            whole_conf.requirement_holds(),
            parts.iter().all(|p| p.confluence.requirement_holds()),
            "k = {k}"
        );
    }
}

/// A lightweight copy of the bench crate's partitioned-context builder (the
/// facade crate cannot depend on `starling-bench` without a dependency
/// cycle through dev-dependencies).
mod starling_bench_helpers {
    use starling::analysis::certifications::Certifications;
    use starling::analysis::context::AnalysisContext;
    use starling::engine::RuleSet;
    use starling::sql::RuleDef;
    use starling::storage::{Catalog, ColumnDef, TableSchema, ValueType};
    use starling::workloads::random::{generate, RandomConfig};

    pub fn partitioned_context(k: usize) -> AnalysisContext {
        let mut catalog = Catalog::new();
        let mut defs: Vec<RuleDef> = Vec::new();
        for p in 0..k {
            let w = generate(&RandomConfig {
                n_tables: 3,
                n_cols: 2,
                n_rules: 5,
                max_actions: 2,
                p_condition: 0.5,
                p_observable: 0.1,
                p_priority: 0.3,
                rows_per_table: 2,
                seed: p as u64,
            });
            for schema in w.catalog.tables() {
                catalog
                    .add_table(
                        TableSchema::new(
                            format!("p{p}_{}", schema.name),
                            schema
                                .columns
                                .iter()
                                .map(|c| ColumnDef {
                                    name: c.name.clone(),
                                    ty: ValueType::Int,
                                    nullable: c.nullable,
                                })
                                .collect(),
                        )
                        .unwrap(),
                    )
                    .unwrap();
            }
            for def in &w.defs {
                let renamed = namespace_tokens(&def.to_string(), p);
                let starling::sql::ast::Statement::CreateRule(r) =
                    starling::sql::parse_statement(&renamed).unwrap()
                else {
                    unreachable!()
                };
                defs.push(r);
            }
        }
        let rules = RuleSet::compile(&defs, &catalog).unwrap();
        AnalysisContext::from_ruleset(&rules, Certifications::new())
    }

    fn namespace_tokens(script: &str, p: usize) -> String {
        let chars: Vec<char> = script.chars().collect();
        let mut out = String::with_capacity(script.len() + 64);
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let at_start = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
            if at_start && (c == 't' || c == 'r') {
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let ends = j == chars.len() || !(chars[j].is_alphanumeric() || chars[j] == '_');
                if j > i + 1 && ends {
                    out.push_str(&format!("p{p}_"));
                    out.extend(&chars[i..j]);
                    i = j;
                    continue;
                }
            }
            out.push(c);
            i += 1;
        }
        out
    }
}

#[test]
fn partition_count_and_cache_behavior() {
    let ctx = starling_bench_helpers::partitioned_context(5);
    let parts = partition_rules(&ctx);
    assert_eq!(parts.len(), 5);
    // Partitions are a disjoint cover.
    let mut seen = std::collections::BTreeSet::new();
    for g in &parts {
        for &i in g {
            assert!(seen.insert(i), "rule {i} in two partitions");
        }
    }
    assert_eq!(seen.len(), ctx.len());
}
