//! Differential tests: compiled plans ≡ the interpreter.
//!
//! The plan layer (`starling::sql::plan`) is a performance path only — the
//! AST interpreter stays the semantic oracle. These tests enforce the
//! contract on three levels:
//!
//! 1. **Statements** — hand-written SQL covering NULL/3VL edge cases,
//!    joins, subqueries, DISTINCT/ORDER BY, and error paths (division by
//!    zero, multi-row scalar subqueries), plus seeded-random SELECTs and
//!    DML over a mixed-type fixture. Compiled execution must produce the
//!    same result set / effects / final state, or fail iff the interpreter
//!    fails (error *messages* may differ; only existence must match).
//! 2. **Rule conditions** — every corpus and case-study rule condition,
//!    compiled and evaluated against transition bindings.
//! 3. **Execution graphs** — full oracle exploration with `EvalMode::Plan`
//!    vs `EvalMode::Interp` must yield identical graphs (the mode is an
//!    explicit per-exploration parameter, so both paths run in one process
//!    without any global switch).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use starling::engine::{explore_with_mode, EvalMode, ExploreConfig, RuleSet};
use starling::sql::ast::{
    Action, BinOp, ColumnRef, Expr, FromItem, InsertSource, InsertStmt, OrderItem, SelectItem,
    SelectStmt, Statement, TableRef, UpdateStmt,
};
use starling::sql::eval::expr::eval_bool;
use starling::sql::eval::{eval_select, exec_action, Env, EvalCtx, TransitionBinding};
use starling::sql::plan::{
    compile_action, compile_condition, compile_select, eval_condition, execute_action,
    execute_select, PlanMode,
};
use starling::sql::{parse_expr, parse_statement};
use starling::storage::{Catalog, ColumnDef, Database, TableSchema, Value, ValueType};
use starling::workloads::{audit, cond_stress, corpus, power_network, random, CorpusEntry};

/// Fixture: three tables with nullable columns, NULLs, duplicate values
/// (for DISTINCT), zeros (for division errors), and LIKE-able strings.
fn fixture() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::nullable("b", ValueType::Int),
                ColumnDef::nullable("s", ValueType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "u",
            vec![
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::nullable("b", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(TableSchema::new("v", vec![ColumnDef::new("a", ValueType::Int)]).unwrap())
        .unwrap();

    let s = |x: &str| Value::Str(x.to_owned());
    let rows_t = [
        (0, Value::Null, s("abc")),
        (1, Value::Int(1), s("a%c")),
        (2, Value::Int(2), Value::Null),
        (3, Value::Int(5), s("xyz")),
        (0, Value::Int(7), s("ab")),
    ];
    for (a, b, sv) in rows_t {
        db.insert("t", vec![Value::Int(a), b, sv]).unwrap();
    }
    let rows_u = [
        (1, Value::Int(1)),
        (2, Value::Null),
        (3, Value::Int(0)),
        (1, Value::Int(4)),
    ];
    for (a, b) in rows_u {
        db.insert("u", vec![Value::Int(a), b]).unwrap();
    }
    for a in [0, 2, 9] {
        db.insert("v", vec![Value::Int(a)]).unwrap();
    }
    db
}

fn parsed_select(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(Action::Select(s)) => s,
        other => panic!("not a select: {sql} -> {other:?}"),
    }
}

fn parsed_action(sql: &str) -> Action {
    match parse_statement(sql).unwrap() {
        Statement::Dml(a) => a,
        other => panic!("not DML: {sql} -> {other:?}"),
    }
}

/// Asserts the plan/interpreter contract for one SELECT: identical result
/// sets, or both fail.
fn assert_select_agrees(s: &SelectStmt, db: &Database, what: &str) {
    let ctx = EvalCtx {
        db,
        transitions: None,
    };
    let mut env = Env::new(&ctx);
    let interp = eval_select(s, &mut env);
    let (plan, slots) = compile_select(s, db.catalog(), None);
    for mode in [PlanMode::Row, PlanMode::Columnar] {
        let planned = execute_select(&plan, slots, db, None, mode);
        match (&interp, planned) {
            (Ok(a), Ok(b)) => assert_eq!(*a, b, "{what} [{mode:?}]: results diverge"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{what} [{mode:?}]: interp {a:?} vs plan {b:?}"),
        }
    }
}

/// Asserts the contract for one action: identical outcome and final state,
/// or both fail with identical final state (partial-apply semantics
/// included).
fn assert_action_agrees(a: &Action, db: &Database, what: &str) {
    let mut db_interp = db.clone();
    let interp = exec_action(a, &mut db_interp, None);
    let plan = compile_action(a, db.catalog(), None);
    for mode in [PlanMode::Row, PlanMode::Columnar] {
        let mut db_plan = db.clone();
        let planned = execute_action(&plan, &mut db_plan, None, mode);
        match (&interp, planned) {
            (Ok(x), Ok(y)) => assert_eq!(*x, y, "{what} [{mode:?}]: outcomes diverge"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("{what} [{mode:?}]: interp {x:?} vs plan {y:?}"),
        }
        assert_eq!(
            db_interp.state_digest(),
            db_plan.state_digest(),
            "{what} [{mode:?}]: final states diverge"
        );
    }
}

#[test]
fn curated_selects_agree() {
    let db = fixture();
    let cases = [
        // Scans, pushdown, DISTINCT, ORDER BY.
        "select * from t",
        "select distinct a from t order by a desc",
        "select a, b from t where b > 1",
        "select a from t where a = 1 and b = 1",
        "select distinct a, b from t order by b desc, a",
        "select a + 1, b * 2 from t order by a",
        // Equality joins (hash path) and cross products.
        "select t.a, u.b from t, u where t.a = u.a",
        "select * from t, u where t.a = u.a and u.b > 0 order by t.a desc, u.b",
        "select t.a, v.a from t, v",
        "select x.a, y.a from t x, t y where x.a = y.a and x.b < y.b",
        // Subqueries: EXISTS, IN, scalar; correlated and not.
        "select a from t where exists (select * from u where u.a = t.a)",
        "select a from t where exists (select * from v where a > 100)",
        "select a from t where a in (select a from u)",
        "select a from t where a not in (select b from u)",
        "select a from t where a in (select a from u where u.b = t.b)",
        "select a from t where a > (select a from v where a > 100)",
        "select a from t where a = (select a from v)",
        "select (select a from v where a = 9) from t",
        // 3VL and NULL propagation.
        "select a from t where b is null",
        "select a from t where b is not null",
        "select a from t where b in (1, 3)",
        "select a from t where b not in (1, 3)",
        "select a from t where b between 1 and 5",
        "select a from t where b not between 1 and 5",
        "select a from t where not (a > 1)",
        "select a from t where b > 1 or s like 'a%'",
        // LIKE (including NULL operands via column s).
        "select s from t where s like 'a%'",
        "select s from t where s like 'a_c'",
        "select s from t where s not like '%b%'",
        // Constant folding and error paths.
        "select 1 + 2 * 3 from t",
        "select 10 / 0 from t",
        "select a / (a - a) from t",
        "select a from t where a > 1 and 10 / 0 > 1",
        "select -a from t",
        // Aggregates and grouping (interpreter fallback, still must agree).
        "select count(*) from t",
        "select a, count(*) from t group by a order by a",
        "select sum(b), min(s) from t",
        "select a from t group by a having count(*) > 1",
        "select a, max(b) from t group by a order by max(b) desc",
        // No FROM clause.
        "select 1 + 1",
        // Transition table outside a rule: both must fail.
        "select * from inserted",
    ];
    for sql in cases {
        assert_select_agrees(&parsed_select(sql), &db, sql);
    }
}

#[test]
fn curated_actions_agree() {
    let db = fixture();
    let cases = [
        "insert into t values (7, 8, 'new')",
        "insert into t values (7, null, null), (8, 0, 'q')",
        "insert into t (b, a) values (5, 6)",
        "insert into v select a from u where b > 0",
        "insert into u select a, b from t where a in (select a from v)",
        "insert into v values (10 / 0)",
        "insert into v select a / (a - 2) from t",
        "delete from v",
        "delete from t where b is null",
        "delete from t where a in (select a from u where b > 0)",
        "delete from u where 10 / b > 2",
        "update t set b = b + 1 where a > 0",
        "update t set a = 0, b = a where b is not null",
        "update u set b = 10 / (a - 1)",
        "update t set b = (select a from v where a > 5) where a = 1",
        "select a from t where b > 2",
        "rollback",
    ];
    for sql in cases {
        assert_action_agrees(&parsed_action(sql), &db, sql);
    }
}

// ---------------------------------------------------------------------------
// Seeded random statement generation.
// ---------------------------------------------------------------------------

const TABLES: [(&str, &[&str]); 3] = [("t", &["a", "b", "s"]), ("u", &["a", "b"]), ("v", &["a"])];

fn gen_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..8) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Str(["a", "ab", "a%", "x_z", "abc"][rng.gen_range(0..5usize)].to_owned()),
        _ => Value::Int(rng.gen_range(-2..10)),
    }
}

/// A column reference from the visible bindings (innermost last), sometimes
/// qualified — and sometimes deliberately ambiguous or dangling, which must
/// fail identically under both evaluators.
fn gen_column(rng: &mut StdRng, scope: &[(String, &'static [&'static str])]) -> Expr {
    if scope.is_empty() || rng.gen_bool(0.05) {
        return Expr::Column(ColumnRef {
            qualifier: None,
            column: "nosuch".to_owned(),
        });
    }
    let (name, cols) = &scope[rng.gen_range(0..scope.len())];
    let column = cols[rng.gen_range(0..cols.len())].to_owned();
    let qualifier = if rng.gen_bool(0.5) {
        Some(name.clone())
    } else {
        None
    };
    Expr::Column(ColumnRef { qualifier, column })
}

fn gen_expr(rng: &mut StdRng, scope: &[(String, &'static [&'static str])], depth: u32) -> Expr {
    let pick = if depth == 0 {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..12)
    };
    let sub = |rng: &mut StdRng| Box::new(gen_expr(rng, scope, depth.saturating_sub(1)));
    match pick {
        0 => Expr::Literal(gen_value(rng)),
        1 => gen_column(rng, scope),
        2 => Expr::Binary {
            op: [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div][rng.gen_range(0..4usize)],
            lhs: sub(rng),
            rhs: sub(rng),
        },
        3 => Expr::Binary {
            op: [
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ][rng.gen_range(0..6usize)],
            lhs: sub(rng),
            rhs: sub(rng),
        },
        4 => Expr::Binary {
            op: if rng.gen_bool(0.5) {
                BinOp::And
            } else {
                BinOp::Or
            },
            lhs: sub(rng),
            rhs: sub(rng),
        },
        5 => Expr::Neg(sub(rng)),
        6 => Expr::Not(sub(rng)),
        7 => Expr::IsNull {
            expr: sub(rng),
            negated: rng.gen_bool(0.5),
        },
        8 => Expr::InList {
            expr: sub(rng),
            list: (0..rng.gen_range(1..4))
                .map(|_| gen_expr(rng, scope, depth - 1))
                .collect(),
            negated: rng.gen_bool(0.5),
        },
        9 => Expr::Between {
            expr: sub(rng),
            low: sub(rng),
            high: sub(rng),
            negated: rng.gen_bool(0.5),
        },
        10 => Expr::Like {
            expr: sub(rng),
            pattern: sub(rng),
            negated: rng.gen_bool(0.5),
        },
        _ => {
            let select = Box::new(gen_select(rng, scope, depth - 1));
            match rng.gen_range(0..3) {
                0 => Expr::Exists(select),
                1 => Expr::InSelect {
                    expr: sub(rng),
                    select,
                    negated: rng.gen_bool(0.5),
                },
                _ => Expr::ScalarSubquery(select),
            }
        }
    }
}

fn gen_select(
    rng: &mut StdRng,
    outer: &[(String, &'static [&'static str])],
    depth: u32,
) -> SelectStmt {
    let n_from = rng.gen_range(0..=2usize);
    let mut from = Vec::with_capacity(n_from);
    let mut scope: Vec<(String, &'static [&'static str])> = outer.to_vec();
    for k in 0..n_from {
        let (table, cols) = TABLES[rng.gen_range(0..TABLES.len())];
        let alias = if rng.gen_bool(0.4) {
            Some(format!("x{k}"))
        } else {
            None
        };
        scope.push((alias.clone().unwrap_or_else(|| table.to_owned()), cols));
        from.push(FromItem {
            table: TableRef::Base(table.to_owned()),
            alias,
        });
    }

    let items = if !from.is_empty() && rng.gen_bool(0.2) {
        vec![SelectItem::Wildcard]
    } else {
        (0..rng.gen_range(1..=3))
            .map(|_| SelectItem::Expr {
                expr: gen_expr(rng, &scope, depth),
                alias: None,
            })
            .collect()
    };
    let where_clause = if rng.gen_bool(0.7) {
        Some(gen_expr(rng, &scope, depth))
    } else {
        None
    };
    let order_by = (0..rng.gen_range(0..=2))
        .map(|_| OrderItem {
            expr: gen_expr(rng, &scope, depth.min(1)),
            desc: rng.gen_bool(0.5),
        })
        .collect();
    SelectStmt {
        distinct: rng.gen_bool(0.3),
        items,
        from,
        where_clause,
        group_by: vec![],
        having: None,
        order_by,
    }
}

fn gen_action(rng: &mut StdRng, depth: u32) -> Action {
    let (table, cols) = TABLES[rng.gen_range(0..TABLES.len())];
    let scope: Vec<(String, &'static [&'static str])> = vec![(table.to_owned(), cols)];
    let pred = |rng: &mut StdRng| {
        if rng.gen_bool(0.8) {
            Some(gen_expr(rng, &scope, depth))
        } else {
            None
        }
    };
    match rng.gen_range(0..3) {
        0 => {
            let source = if rng.gen_bool(0.5) {
                InsertSource::Values(
                    (0..rng.gen_range(1..=2))
                        .map(|_| (0..cols.len()).map(|_| gen_expr(rng, &[], depth)).collect())
                        .collect(),
                )
            } else {
                InsertSource::Select(gen_select(rng, &[], depth))
            };
            Action::Insert(InsertStmt {
                table: table.to_owned(),
                columns: None,
                source,
            })
        }
        1 => Action::Delete(starling::sql::ast::DeleteStmt {
            table: table.to_owned(),
            where_clause: pred(rng),
        }),
        _ => {
            let sets = (0..rng.gen_range(1..=2))
                .map(|_| {
                    (
                        cols[rng.gen_range(0..cols.len())].to_owned(),
                        gen_expr(rng, &scope, depth),
                    )
                })
                .collect();
            Action::Update(UpdateStmt {
                table: table.to_owned(),
                sets,
                where_clause: pred(rng),
            })
        }
    }
}

#[test]
fn random_selects_agree() {
    let db = fixture();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = gen_select(&mut rng, &[], 3);
        assert_select_agrees(&s, &db, &format!("seed {seed}: {s:?}"));
    }
}

#[test]
fn random_actions_agree() {
    let db = fixture();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xac7104);
        let a = gen_action(&mut rng, 2);
        assert_action_agrees(&a, &db, &format!("seed {seed}: {a:?}"));
    }
}

// ---------------------------------------------------------------------------
// Rule conditions: corpus, case studies, and transition-table binding.
// ---------------------------------------------------------------------------

/// Asserts the contract for one rule condition under a transition binding.
fn assert_condition_agrees(
    cond: &Expr,
    catalog: &Catalog,
    rule_table: &str,
    db: &Database,
    binding: &TransitionBinding,
    what: &str,
) {
    let ctx = EvalCtx {
        db,
        transitions: Some(binding),
    };
    let mut env = Env::new(&ctx);
    let interp = eval_bool(cond, &mut env);
    let plan = compile_condition(cond, catalog, Some(rule_table));
    for mode in [PlanMode::Row, PlanMode::Columnar] {
        let planned = eval_condition(&plan, db, Some(binding), mode);
        match (&interp, planned) {
            (Ok(a), Ok(b)) => assert_eq!(*a, b, "{what} [{mode:?}]: condition values diverge"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{what} [{mode:?}]: interp {a:?} vs plan {b:?}"),
        }
    }
}

/// Every corpus and case-study rule condition, evaluated under empty and
/// nonempty transition bindings.
#[test]
fn corpus_and_case_study_conditions_agree() {
    // Corpus rules run against the standard 4-table catalog.
    let mut db = Database::new();
    for schema in CorpusEntry::catalog().tables() {
        db.create_table(schema.clone()).unwrap();
    }
    db.insert("t", vec![Value::Int(0)]).unwrap();
    db.insert("u", vec![Value::Int(3)]).unwrap();
    for entry in corpus() {
        let rules = entry.compile();
        for r in rules.rules() {
            let Some(cond) = &r.def.condition else {
                continue;
            };
            let empty = TransitionBinding::empty(&r.def.table);
            let full = TransitionBinding {
                table: r.def.table.clone(),
                inserted: vec![vec![Value::Int(1)], vec![Value::Int(7)]],
                deleted: vec![vec![Value::Int(2)]],
                new_updated: vec![vec![Value::Int(5)]],
                old_updated: vec![vec![Value::Int(4)]],
            };
            for (tag, b) in [("empty", &empty), ("full", &full)] {
                assert_condition_agrees(
                    cond,
                    rules.catalog(),
                    &r.def.table,
                    &db,
                    b,
                    &format!("corpus/{} rule {} ({tag})", entry.name, r.name()),
                );
            }
        }
    }

    // Case studies: conditions against the seeded databases, with bindings
    // drawn from each rule's own table rows.
    for w in [power_network::workload(), audit::workload()] {
        let (db, rules) = w.compile().unwrap();
        for r in rules.rules() {
            let Some(cond) = &r.def.condition else {
                continue;
            };
            let rows: Vec<_> = db
                .table(&r.def.table)
                .unwrap()
                .rows()
                .take(2)
                .cloned()
                .collect();
            let empty = TransitionBinding::empty(&r.def.table);
            let full = TransitionBinding {
                table: r.def.table.clone(),
                inserted: rows.clone(),
                deleted: rows.clone(),
                new_updated: rows.clone(),
                old_updated: rows,
            };
            for (tag, b) in [("empty", &empty), ("full", &full)] {
                assert_condition_agrees(
                    cond,
                    rules.catalog(),
                    &r.def.table,
                    &db,
                    b,
                    &format!("case_study/{} rule {} ({tag})", w.name, r.name()),
                );
            }
        }
    }
}

/// Conditions over transition tables with NULLs and joins, bound to the
/// fixture schema.
#[test]
fn transition_conditions_agree() {
    let db = fixture();
    let binding = TransitionBinding {
        table: "t".to_owned(),
        inserted: vec![
            vec![Value::Int(1), Value::Null, Value::Str("ab".into())],
            vec![Value::Int(9), Value::Int(2), Value::Null],
        ],
        deleted: vec![vec![Value::Int(0), Value::Int(7), Value::Str("x".into())]],
        new_updated: vec![vec![Value::Int(2), Value::Int(3), Value::Null]],
        old_updated: vec![vec![Value::Int(2), Value::Int(1), Value::Null]],
    };
    let conds = [
        "exists (select * from inserted where a > 1)",
        "exists (select * from inserted where b is null)",
        "exists (select * from inserted i, u where i.a = u.a and u.b > 0)",
        "exists (select * from deleted where a in (select a from v))",
        "exists (select * from new_updated n, old_updated o where n.a = o.a and n.b > o.b)",
        "(select b from new_updated) > 2",
        "not exists (select * from inserted where s like 'a%')",
        "exists (select distinct a from inserted order by a desc)",
    ];
    for src in conds {
        let cond = parse_expr(src).unwrap();
        assert_condition_agrees(&cond, db.catalog(), "t", &db, &binding, src);
    }
}

// ---------------------------------------------------------------------------
// Execution graphs: plan path vs forced interpretation.
// ---------------------------------------------------------------------------

fn graph_fingerprint(
    rules: &RuleSet,
    db: &Database,
    actions: &[Action],
    cfg: &ExploreConfig,
    mode: EvalMode,
    what: &str,
) -> (usize, usize, Vec<u64>) {
    let g = explore_with_mode(rules, db, actions, cfg, mode).unwrap();
    assert!(!g.truncated(), "{what}: exploration truncated");
    let mut digests: Vec<u64> = g
        .final_dbs
        .iter()
        .map(|(_, fdb)| fdb.state_digest())
        .collect();
    digests.sort_unstable();
    (g.states.len(), g.edges.len(), digests)
}

/// Full oracle exploration must be bit-identical between the compiled-plan
/// path ([`EvalMode::Plan`]) and forced interpretation
/// ([`EvalMode::Interp`]).
#[test]
fn exploration_graphs_agree_with_forced_interp() {
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);

    let mut cases: Vec<(String, RuleSet, Database, Vec<Action>)> = Vec::new();

    // Terminating corpus entries.
    for entry in corpus() {
        if !matches!(
            entry.name,
            "independent" | "cascade_ordered" | "unordered_writers" | "ordered_observables"
        ) {
            continue;
        }
        let rules = entry.compile();
        let mut db = Database::new();
        for schema in CorpusEntry::catalog().tables() {
            db.create_table(schema.clone()).unwrap();
        }
        db.insert("t", vec![Value::Int(0)]).unwrap();
        db.insert("u", vec![Value::Int(0)]).unwrap();
        let action = parsed_action("insert into t values (1)");
        cases.push((format!("corpus/{}", entry.name), rules, db, vec![action]));
    }

    // Condition-heavy workloads (the bench cases).
    cases.push((
        "cond/eq_join".to_owned(),
        cond_stress::join_rules(),
        cond_stress::database(),
        cond_stress::user_actions(),
    ));
    cases.push((
        "cond/scan_filter".to_owned(),
        cond_stress::filter_rules(),
        cond_stress::database(),
        cond_stress::user_actions(),
    ));

    // Case study (audit terminates quickly; power_network is covered by the
    // pinned-digest case-study tests, whose expectations predate the plan
    // layer).
    {
        let w = audit::workload();
        let (db, rules) = w.compile().unwrap();
        let actions = w.user_actions().unwrap();
        cases.push((format!("case_study/{}", w.name), rules, db, actions));
    }

    // Random workloads.
    for seed in 0..6u64 {
        let w = random::generate(&random::RandomConfig {
            seed,
            n_rules: 5,
            ..random::RandomConfig::default()
        });
        let rules = w.compile();
        let db = w.seed_database();
        let actions = w.user_transition(0xd1ff);
        cases.push((format!("random/seed{seed}"), rules, db, actions));
    }

    for (name, rules, db, actions) in &cases {
        let with_plans = graph_fingerprint(rules, db, actions, &cfg, EvalMode::Plan, name);
        let with_interp = graph_fingerprint(rules, db, actions, &cfg, EvalMode::Interp, name);
        assert_eq!(with_plans, with_interp, "{name}: graphs diverge");
    }
}
