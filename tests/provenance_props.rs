//! Properties of the provenance subsystem (why-provenance and divergence
//! witnesses), checked over the pinned fuzz corpus, fresh generated
//! programs, and the chase workloads:
//!
//! * tracing is free of observable effect: provenance-on and
//!   provenance-off explorations produce structurally identical graphs;
//! * every extracted witness replays: both firing sequences, run through
//!   the engine from the common state, reproduce the two claimed final
//!   database digests byte-identically — and those digests differ;
//! * confluent explorations yield no witness, and deterministic programs
//!   record no choice points.

use starling_analysis::load_script;
use starling_engine::{explore, explore_traced, Budget};
use starling_fuzz::{generate, GenConfig};
use starling_provenance::{explain_divergence, witness};
use starling_workloads::chase;

/// The fuzz harness's exploration budget (kept in sync with
/// `FuzzConfig::default`), so corpus reproducers explore exactly as the
/// campaign that pinned them.
fn fuzz_budget() -> Budget {
    Budget::default()
        .with_max_states(300)
        .with_max_paths(2000)
        .with_max_considerations(5000)
        .with_max_rows(2000)
}

/// Every pinned corpus script, as `(name, source)`.
fn corpus_scripts() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_corpus");
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "star"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).expect("corpus file readable"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn tracing_never_perturbs_exploration() {
    let budget = fuzz_budget();
    let mut checked = 0;
    for (name, src) in corpus_scripts() {
        let s = load_script(&src).expect("corpus script loads");
        if s.user_actions.is_empty() {
            continue;
        }
        let plain = explore(&s.rules, &s.db, &s.user_actions, &budget).unwrap();
        let (traced, _) = explore_traced(&s.rules, &s.db, &s.user_actions, &budget).unwrap();
        assert_eq!(plain, traced, "{name}: tracing changed the graph");
        checked += 1;
    }
    // Generated programs cover shapes the corpus does not (rollbacks,
    // observables, multi-table cascades).
    for seed in 0..25u64 {
        let case = generate(seed, &GenConfig::default());
        let src = case.script();
        let Ok(s) = load_script(&src) else { continue };
        if s.user_actions.is_empty() {
            continue;
        }
        let plain = explore(&s.rules, &s.db, &s.user_actions, &budget);
        let traced = explore_traced(&s.rules, &s.db, &s.user_actions, &budget);
        match (plain, traced) {
            (Ok(p), Ok((t, _))) => assert_eq!(p, t, "seed {seed}: tracing changed the graph"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "seed {seed}"),
            (a, b) => panic!("seed {seed}: tracing changed the outcome: {a:?} vs {b:?}"),
        }
        checked += 1;
    }
    assert!(checked >= 10, "property must actually exercise programs");
}

#[test]
fn corpus_witnesses_replay_byte_identically() {
    let budget = fuzz_budget();
    let mut divergent = 0;
    for (name, src) in corpus_scripts() {
        let s = load_script(&src).expect("corpus script loads");
        if s.user_actions.is_empty() {
            continue;
        }
        let ex = explain_divergence(
            &s.rules,
            &s.db,
            &s.user_actions,
            &budget,
            Default::default(),
        )
        .unwrap();
        let distinct = ex.graph.final_db_digests().len();
        match ex.witness {
            Some(w) => {
                assert!(distinct >= 2, "{name}: witness without divergence");
                assert!(
                    w.replay_verified,
                    "{name}: witness failed engine replay: {w:?}"
                );
                assert_ne!(w.left_digest, w.right_digest, "{name}");
                assert_ne!(w.pair.0, w.pair.1, "{name}");
                // Replay is deterministic: running verification again
                // reproduces the digests byte-identically.
                assert!(
                    witness::verify(&s.rules, &s.db, &s.user_actions, &w, Default::default())
                        .unwrap(),
                    "{name}: second replay diverged from the first"
                );
                divergent += 1;
            }
            None => assert!(distinct <= 1, "{name}: divergence without witness"),
        }
    }
    assert!(
        divergent >= 1,
        "the pinned corpus must contain a non-confluent case"
    );
}

/// Generator seeds known to produce divergent programs under
/// `GenConfig::default()` (found by sweeping seeds 0..600; generation is a
/// pure function of the seed, so these are stable).
const PINNED_DIVERGENT_SEEDS: &[u64] = &[40, 95, 96, 144, 150, 160, 208, 247, 320, 475, 521, 537];

#[test]
fn generated_witnesses_replay_on_pinned_seeds() {
    let budget = fuzz_budget();
    for &seed in PINNED_DIVERGENT_SEEDS {
        let case = generate(seed, &GenConfig::default());
        let s = load_script(&case.script())
            .unwrap_or_else(|e| panic!("seed {seed}: pinned case no longer loads: {e}"));
        let ex = explain_divergence(
            &s.rules,
            &s.db,
            &s.user_actions,
            &budget,
            Default::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: exploration failed: {e}"));
        let w = ex
            .witness
            .unwrap_or_else(|| panic!("seed {seed}: pinned divergent case became confluent"));
        assert!(w.replay_verified, "seed {seed}: {w:?}");
        assert_ne!(w.left_digest, w.right_digest, "seed {seed}");
        assert!(
            w.len() <= w.baseline_len,
            "seed {seed}: minimization made the witness longer"
        );
        assert!(
            ex.log.ambiguous() >= 1,
            "seed {seed}: divergence needs a choice point"
        );
    }
}

#[test]
fn chase_workloads_explain_cleanly() {
    let budget = Budget::default();
    // Confluent chase: no witness, no recorded ambiguity.
    let w = chase::terminating();
    let (db, rules) = w.compile().unwrap();
    let ex = explain_divergence(
        &rules,
        &db,
        &w.user_actions().unwrap(),
        &budget,
        Default::default(),
    )
    .unwrap();
    assert!(ex.witness.is_none(), "weakly acyclic chase is confluent");
    assert_eq!(ex.log.ambiguous(), 0);

    // Order-sensitive chase: witness, replay-verified.
    let w = chase::order_sensitive();
    let (db, rules) = w.compile().unwrap();
    let ex = explain_divergence(
        &rules,
        &db,
        &w.user_actions().unwrap(),
        &budget,
        Default::default(),
    )
    .unwrap();
    let witness = ex.witness.expect("shared label supply diverges");
    assert!(witness.replay_verified);
    assert!(ex.log.ambiguous() >= 1);
}
