//! Durability properties (ISSUE tentpole): recovery — loading the latest
//! snapshot and replaying the WAL tail — must reproduce the acknowledged
//! state *exactly*: digest and full [`Database`] equality, tuple-id
//! allocator included, plus rule definitions and directives.
//!
//! The suite covers: random op sequences (durable session ≡ in-memory
//! session, then drop-and-reopen), the empty WAL, torn tails (the WAL
//! chopped at arbitrary byte offsets must recover *some* acknowledged
//! prefix), snapshots taken mid-stream, and the crash-point matrix — a
//! one-shot injected fault at every mutating-op index (WAL appends,
//! syncs, and snapshot writes included) with recovery checked after every
//! transition.
//!
//! Set `STARLING_RECOVERY_DIR` to put the scratch stores somewhere CI can
//! upload: directories are only cleaned up when a case passes, so a
//! failure leaves its store behind as the artifact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use starling::engine::{FirstEligible, Session};
use starling::sql::ast::Statement;
use starling::storage::{Database, FaultPlan, FaultSpec, SyncPolicy, WalStore};
use starling::workloads::random::{generate, RandomConfig};

/// A fresh scratch directory for one store. Never reused; removed by the
/// caller only after its assertions pass.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let root = match std::env::var_os("STARLING_RECOVERY_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir(),
    };
    root.join(format!(
        "starling-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Asserts that reopening `dir` yields exactly the durable session's
/// acknowledged base (database, defs, directives).
fn assert_recovers_acked(dir: &std::path::Path, s: &Session, ctx: &str) {
    let att = s.durability().expect("session must be durable");
    let recovered = Session::open_durable(dir, SyncPolicy::Always)
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    assert_eq!(recovered.db(), att.base_db(), "{ctx}: database");
    assert_eq!(
        recovered.db().state_digest(),
        att.base_db().state_digest(),
        "{ctx}: digest"
    );
    assert_eq!(recovered.rule_defs(), att.base_defs(), "{ctx}: rule defs");
    assert_eq!(
        recovered.directives(),
        att.base_directives(),
        "{ctx}: directives"
    );
}

proptest! {
    /// For random rule programs and transitions, (a) a WAL-attached session
    /// behaves exactly like an in-memory one, and (b) dropping it with no
    /// final snapshot and reopening recovers the acknowledged state.
    #[test]
    fn random_sequences_recover_exactly(seed in 0u64..40, salt in 1u64..4) {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 4,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.0,
            p_priority: 0.2,
            rows_per_table: 2,
            seed,
        });
        let script = w.script();
        let dir = scratch_dir("random");

        let mut mem = Session::new();
        let mut dur = Session::new();
        mem.max_considerations = 200;
        dur.max_considerations = 200;
        dur.persist_to(&dir, SyncPolicy::Always).unwrap();

        // The schema/rules/seed script, then a few extra transitions.
        let mut steps: Vec<Vec<Statement>> = vec![
            starling::sql::parse_script(&script).unwrap(),
        ];
        for extra in 0..2u64 {
            steps.push(
                w.user_transition(salt + extra)
                    .into_iter()
                    .map(Statement::Dml)
                    .collect(),
            );
        }
        for (k, step) in steps.into_iter().enumerate() {
            let mut results = Vec::new();
            for (label, s) in [("mem", &mut mem), ("dur", &mut dur)] {
                let mut errs = Vec::new();
                for stmt in &step {
                    if let Err(e) = s.execute(stmt) {
                        errs.push(e.to_string());
                        break;
                    }
                }
                let outcome = if errs.is_empty() {
                    Some(s.commit(&mut FirstEligible).unwrap().outcome)
                } else {
                    None
                };
                results.push((label, errs, outcome));
            }
            // The attachment must not change semantics: same errors, same
            // outcome, same database.
            assert_eq!(&results[0].1, &results[1].1, "seed {} step {k}", seed);
            assert_eq!(results[0].2, results[1].2, "seed {} step {k}", seed);
            assert_eq!(mem.db(), dur.db(), "seed {} step {k}", seed);
        }

        // Crash simulation: no final snapshot, reopen from WAL.
        let base = dur.durability().unwrap().base_db().clone();
        assert_eq!(&base, dur.db(), "acked base tracks the session");
        drop(dur);
        let recovered = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.db(), &base, "seed {}: recovery", seed);
        assert_eq!(recovered.db(), mem.db(), "seed {}: recovery == memory", seed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn empty_wal_recovers_an_empty_database() {
    let dir = scratch_dir("empty");
    let mut s = Session::new();
    s.persist_to(&dir, SyncPolicy::Always).unwrap();
    drop(s);
    let recovered = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(recovered.db(), &Database::new());
    assert!(recovered.rule_defs().is_empty());
    assert!(recovered.directives().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Chopping the WAL at *any* byte offset must recover some acknowledged
/// prefix of the commit history — never a hybrid, never an error.
#[test]
fn torn_tails_recover_to_an_acknowledged_prefix() {
    let dir = scratch_dir("torn-src");
    let mut s = Session::new();
    s.execute_script(
        "create table t (a int); \
         create table log (a int); \
         create rule r on t when inserted then \
           insert into log select a from inserted end;",
    )
    .unwrap();
    s.persist_to(&dir, SyncPolicy::Always).unwrap();
    // Default snapshot cadence is far above 6 commits: the WAL holds the
    // whole history, so every prefix state is reachable by chopping. The
    // acked states are: empty (a cut inside the initial frame), the
    // post-script base, and each of the six commits.
    let mut prefixes: Vec<Database> =
        vec![Database::new(), s.durability().unwrap().base_db().clone()];
    for k in 0..6 {
        s.execute_script(&format!("insert into t values ({k});"))
            .unwrap();
        s.commit(&mut FirstEligible).unwrap();
        prefixes.push(s.durability().unwrap().base_db().clone());
    }
    drop(s);
    let wal = std::fs::read(dir.join("wal.log")).unwrap();

    let chop_dir = scratch_dir("torn-chop");
    let mut seen_states = std::collections::BTreeSet::new();
    for cut in (0..=wal.len()).rev().step_by(3) {
        let _ = std::fs::remove_dir_all(&chop_dir);
        std::fs::create_dir_all(&chop_dir).unwrap();
        std::fs::write(chop_dir.join("wal.log"), &wal[..cut]).unwrap();
        let (_store, recovered) = WalStore::open(&chop_dir, SyncPolicy::Always)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let idx = prefixes
            .iter()
            .position(|p| *p == recovered.db)
            .unwrap_or_else(|| panic!("cut {cut}: recovered state is not an acked prefix"));
        seen_states.insert(idx);
    }
    // The sweep is not vacuous: both the empty store and the full history
    // (and states between) were hit.
    assert!(seen_states.contains(&0));
    assert!(seen_states.contains(&prefixes.len().saturating_sub(1)));
    assert!(seen_states.len() > 2, "{seen_states:?}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&chop_dir);
}

/// Snapshots taken mid-stream (rotation every 2 commits plus an explicit
/// one) never change what recovery yields, including when the post-snapshot
/// WAL tail is then torn off.
#[test]
fn snapshot_mid_stream_preserves_recovery() {
    let dir = scratch_dir("snap");
    let mut s = Session::new();
    s.execute_script("create table t (a int);").unwrap();
    s.persist_to(&dir, SyncPolicy::Batch).unwrap();
    s.set_snapshot_every(2);
    let mut states: Vec<Database> = vec![s.durability().unwrap().base_db().clone()];
    for k in 0..5 {
        s.execute_script(&format!("insert into t values ({k});"))
            .unwrap();
        s.commit(&mut FirstEligible).unwrap();
        if k == 2 {
            s.durable_snapshot().unwrap();
        }
        states.push(s.durability().unwrap().base_db().clone());
        assert_recovers_acked(&dir, &s, &format!("after commit {k}"));
    }
    // Tear off the WAL tail behind the last snapshot: recovery falls back
    // to some acknowledged state at or after that snapshot.
    let final_state = s.durability().unwrap().base_db().clone();
    drop(s);
    let wal = std::fs::read(dir.join("wal.log")).unwrap();
    for cut in (0..=wal.len()).rev().step_by(5) {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);
        let (_store, recovered) = WalStore::open(&dir, SyncPolicy::Always)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        assert!(
            states.contains(&recovered.db),
            "cut {cut}: not an acked state"
        );
    }
    // Fully torn tail: the snapshot alone still carries an acked state.
    let (_store, recovered) = WalStore::open(&dir, SyncPolicy::Always).unwrap();
    assert!(recovered.snapshot_loaded);
    assert!(states.contains(&recovered.db));
    let _ = final_state;
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-point matrix: a one-shot fault before mutating op `i`, for
/// every `i` until a full replay fires nothing — WAL appends, WAL syncs,
/// and snapshot writes included (snapshot cadence 3 puts rotation inside
/// the sweep). After every transition, disk must hold exactly the
/// acknowledged state.
#[test]
fn crash_point_matrix_recovers_acked_state_at_every_fault_index() {
    const SCRIPT: &str = "create table t (a int); \
                          create table log (a int); \
                          create rule r on t when inserted then \
                            insert into log select a from inserted end; \
                          create rule q on t when updated(a) then \
                            delete from log where a < 0 end;";
    const TRANSITIONS: &[&str] = &[
        "insert into t values (1);",
        "insert into t values (2);",
        "update t set a = a + 1 where a = 1;",
        "declare terminates r 'finite input';",
        "alter rule r precedes q;",
        "delete from t where a = 2;",
        "insert into t values (7);",
    ];
    let mut indices_fired = 0u32;
    for i in 0.. {
        let dir = scratch_dir("matrix");
        let mut s = Session::new();
        s.execute_script(SCRIPT).unwrap();
        s.persist_to(&dir, SyncPolicy::Always).unwrap();
        s.set_snapshot_every(3);
        s.install_fault_plan(FaultPlan::single(FaultSpec::nth(i)));
        for (k, t) in TRANSITIONS.iter().enumerate() {
            // Execution or commit may abort on the injected fault; both are
            // legitimate crash points. The invariant is unconditional.
            if s.execute_script(t).is_ok() {
                let _ = s.commit(&mut FirstEligible);
            }
            assert_recovers_acked(&dir, &s, &format!("fault {i}, transition {k}"));
        }
        let fired = s.db().fault_state().is_some_and(|f| f.any_fired());
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
        if !fired {
            break;
        }
        indices_fired += 1;
    }
    // The matrix exercised a real spread of crash points, including the
    // durability ops (plain data ops alone would stop far sooner).
    assert!(
        indices_fired > 10,
        "only {indices_fired} fault indices fired"
    );
}
