//! The Section 9 predicate-level refinement: the two examples the paper
//! gives after Lemma 6.1, verified end-to-end — the refined analysis
//! accepts the rule sets, and the exhaustive oracle confirms confluence.

use starling::analysis::certifications::Certifications;
use starling::analysis::confluence::analyze_confluence;
use starling::analysis::context::AnalysisContext;
use starling::prelude::*;
use starling::sql::ast::Statement;

fn build(setup: &str, rules_src: &str) -> (Database, RuleSet) {
    let mut session = Session::new();
    session.execute_script(setup).unwrap();
    session.commit(&mut FirstEligible).unwrap();
    let defs: Vec<_> = starling::sql::parse_script(rules_src)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();
    (session.db().clone(), rules)
}

fn user(src: &str) -> Vec<starling::sql::ast::Action> {
    starling::sql::parse_script(src)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::Dml(a) => Some(a),
            _ => None,
        })
        .collect()
}

/// Paper example 2: "r_i and r_j update the same table but never the same
/// tuples" (disjoint key ranges).
#[test]
fn disjoint_updates_refined_and_oracle_confirmed() {
    let setup = "
        create table t (x int);
        create table shard (k int, v int);
        insert into shard values (1, 0);
        insert into shard values (2, 0);
    ";
    let rules_src = "
        create rule low on t when inserted
        then update shard set v = 10 where k = 1 end;
        create rule high on t when inserted
        then update shard set v = 20 where k = 2 end;
    ";
    let (db, rules) = build(setup, rules_src);

    // Paper-exact analysis: condition 5 fires (both update shard.v).
    let plain = AnalysisContext::from_ruleset(&rules, Certifications::new());
    assert!(!analyze_confluence(&plain).requirement_holds());

    // Refined analysis: the WHERE clauses k = 1 / k = 2 are provably
    // disjoint — the pair commutes.
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    let conf = analyze_confluence(&refined);
    assert!(conf.requirement_holds(), "{:?}", conf.violations);

    // Oracle agreement.
    let g = explore(
        &rules,
        &db,
        &user("insert into t values (1)"),
        &ExploreConfig::default(),
    )
    .unwrap();
    assert_eq!(g.confluent(), Some(true));
}

/// Paper example 1: "the tuples inserted by r_i never satisfy the delete
/// condition of r_j".
#[test]
fn insert_outside_delete_predicate_refined() {
    let setup = "
        create table t (x int);
        create table q (prio int, payload int);
        insert into q values (5, 100);
    ";
    let rules_src = "
        create rule enqueue on t when inserted
        then insert into q values (9, 1) end;
        create rule purge_low on t when inserted
        then delete from q where prio < 3 end;
    ";
    let (db, rules) = build(setup, rules_src);

    let plain = AnalysisContext::from_ruleset(&rules, Certifications::new());
    assert!(!analyze_confluence(&plain).requirement_holds());

    // prio = 9 never satisfies prio < 3: refinement discharges condition 4.
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    let conf = analyze_confluence(&refined);
    assert!(conf.requirement_holds(), "{:?}", conf.violations);

    let g = explore(
        &rules,
        &db,
        &user("insert into t values (1)"),
        &ExploreConfig::default(),
    )
    .unwrap();
    assert_eq!(g.confluent(), Some(true));
}

/// Negative control: when the insert CAN satisfy the delete predicate, the
/// refinement must keep the reason — and the oracle indeed shows
/// non-confluence.
#[test]
fn overlapping_insert_delete_not_refined() {
    let setup = "
        create table t (x int);
        create table q (prio int, payload int);
    ";
    let rules_src = "
        create rule enqueue on t when inserted
        then insert into q values (1, 1) end;
        create rule purge_low on t when inserted
        then delete from q where prio < 3 end;
    ";
    let (db, rules) = build(setup, rules_src);
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    assert!(!analyze_confluence(&refined).requirement_holds());

    let g = explore(
        &rules,
        &db,
        &user("insert into t values (1)"),
        &ExploreConfig::default(),
    )
    .unwrap();
    // enqueue-then-purge deletes the fresh row; purge-then-enqueue keeps it.
    assert_eq!(g.confluent(), Some(false));
}

/// Negative control for updates: overlapping ranges stay flagged.
#[test]
fn overlapping_updates_not_refined() {
    let setup = "
        create table t (x int);
        create table shard (k int, v int);
        insert into shard values (1, 0);
    ";
    let rules_src = "
        create rule a on t when inserted
        then update shard set v = 10 where k < 5 end;
        create rule b on t when inserted
        then update shard set v = 20 where k >= 0 end;
    ";
    let (db, rules) = build(setup, rules_src);
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    assert!(!analyze_confluence(&refined).requirement_holds());
    let g = explore(
        &rules,
        &db,
        &user("insert into t values (1)"),
        &ExploreConfig::default(),
    )
    .unwrap();
    assert_eq!(g.confluent(), Some(false));
}

/// An unguarded update (no WHERE) can never be refined away.
#[test]
fn unguarded_update_not_refined() {
    let setup = "
        create table t (x int);
        create table shard (k int, v int);
        insert into shard values (1, 0);
    ";
    let rules_src = "
        create rule a on t when inserted
        then update shard set v = 10 where k = 1 end;
        create rule b on t when inserted
        then update shard set v = 20 end;
    ";
    let (_db, rules) = build(setup, rules_src);
    let refined = AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
    assert!(!analyze_confluence(&refined).requirement_holds());
}
