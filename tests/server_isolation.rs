//! Concurrent-session isolation: N sessions served concurrently must be
//! byte-identical to the same sessions replayed serially, and one
//! session's aborts or budget exhaustion must never perturb another.
//!
//! The serial reference drives [`ServerSession`] directly (no TCP); the
//! concurrent side goes through the real server and wire protocol, so the
//! comparison covers the whole stack: protocol parsing, the shared
//! program cache, copy-on-write snapshot handout, and request atomicity.

use std::time::Duration;

use starling_server::{Client, ScriptCache, Server, ServerSession};
use starling_sql::json::Json;

/// How long a test client polls for server readiness before giving up.
const READY: Duration = Duration::from_secs(10);

/// The shared program: seeded accounts, an audit rule, a capping rule,
/// and a one-row user transition for `explore`.
fn base_script() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("create table acct (id int, bal int);\n");
    s.push_str("create table log (id int, bal int);\n");
    for i in 0..20 {
        let _ = writeln!(s, "insert into acct values ({i}, {});", (i * 7) % 90);
    }
    s.push_str(
        "create rule audit on acct when inserted then \
           insert into log select id, bal from inserted end;\n\
         create rule cap on acct when inserted, updated(bal) \
           if exists (select * from acct where bal > 100) \
           then update acct set bal = 100 where bal > 100 end;\n\
         insert into acct values (1000, 5);\n",
    );
    s
}

/// A non-terminating program for budget-exhaustion sessions.
const GROW: &str = "create table t (x int);\n\
                    create rule grow on t when inserted then \
                      insert into t select x + 1 from inserted end;";

/// Session `i`'s distinct mutation under the base program.
fn exec_sql(i: usize) -> String {
    format!(
        "insert into acct values ({}, {});",
        2000 + i,
        (i * 13) % 150
    )
}

fn op(json: &str) -> Json {
    Json::parse(json).expect("test op json")
}

fn load_op(script: &str) -> Json {
    Json::obj([("op", Json::from("load")), ("script", Json::from(script))])
}

fn exec_op(sql: &str) -> Json {
    Json::obj([("op", Json::from("exec")), ("sql", Json::from(sql))])
}

/// The serial reference: session `i`'s digest when nothing else runs.
fn serial_digest(script: &str, sql: &str, cache: &ScriptCache) -> String {
    let mut s = ServerSession::new();
    s.handle_op("load", &load_op(script), cache)
        .expect("serial load");
    s.handle_op("exec", &exec_op(sql), cache)
        .expect("serial exec");
    s.handle_op("digest", &op("{}"), cache)
        .expect("serial digest")
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest string")
        .to_owned()
}

/// Digest over the wire.
fn wire_digest(c: &mut Client) -> String {
    c.expect_ok(&op(r#"{"op":"digest"}"#))
        .expect("digest request")
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest string")
        .to_owned()
}

#[test]
fn sixty_four_concurrent_sessions_match_serial_replay() {
    const SESSIONS: usize = 64;
    let script = base_script();

    let cache = ScriptCache::new();
    let expected: Vec<String> = (0..SESSIONS)
        .map(|i| serial_digest(&script, &exec_sql(i), &cache))
        .collect();

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let got: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let script = &script;
                scope.spawn(move || {
                    let mut c = Client::connect_ready(addr, READY).expect("connect");
                    c.expect_ok(&load_op(script)).expect("load");
                    c.expect_ok(&exec_op(&exec_sql(i))).expect("exec");
                    let d = wire_digest(&mut c);
                    c.quit().expect("quit");
                    d
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session"))
            .collect()
    });

    for (i, (got, expected)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(got, expected, "session {i} diverged from serial replay");
    }
    // All 64 loads were served by one compilation.
    let (hits, misses) = server.shared().cache.stats();
    assert_eq!(
        misses, 1,
        "single-flight cache: {hits} hits / {misses} misses"
    );
    server.shutdown();
    server.join();
}

#[test]
fn aborts_and_budget_exhaustion_do_not_perturb_neighbors() {
    const SESSIONS: usize = 30;
    let script = base_script();

    // Serial reference for the well-behaved sessions only.
    let cache = ScriptCache::new();
    let expected: Vec<Option<String>> = (0..SESSIONS)
        .map(|i| (i % 3 == 0).then(|| serial_digest(&script, &exec_sql(i), &cache)))
        .collect();

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let got: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let script = &script;
                scope.spawn(move || {
                    let mut c = Client::connect_ready(addr, READY).expect("connect");
                    match i % 3 {
                        // Well-behaved: must come out byte-identical to
                        // the serial replay despite the chaos next door.
                        0 => {
                            c.expect_ok(&load_op(script)).expect("load");
                            c.expect_ok(&exec_op(&exec_sql(i))).expect("exec");
                        }
                        // Budget-exhausted: a non-terminating program under
                        // a tiny consideration budget. The error is
                        // `inconclusive` and the session state must be as
                        // if the request never happened.
                        1 => {
                            c.expect_ok(&load_op(GROW)).expect("load grow");
                            let before = wire_digest(&mut c);
                            let resp = c
                                .call(&op(
                                    r#"{"op":"exec","sql":"insert into t values (1);","budget":{"max_considerations":5}}"#,
                                ))
                                .expect("exec request");
                            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
                            assert_eq!(
                                resp.get("error")
                                    .and_then(|e| e.get("code"))
                                    .and_then(Json::as_str),
                                Some("inconclusive"),
                                "{resp}"
                            );
                            assert_eq!(wire_digest(&mut c), before, "exhausted exec leaked state");
                        }
                        // Aborting: a priority cycle at the assertion
                        // point aborts the transaction; error code
                        // `aborted`, session state untouched.
                        _ => {
                            c.expect_ok(&load_op(script)).expect("load");
                            let before = wire_digest(&mut c);
                            let resp = c
                                .call(&exec_op(
                                    "alter rule audit precedes cap; \
                                     alter rule cap precedes audit; \
                                     insert into acct values (1, 1);",
                                ))
                                .expect("exec request");
                            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
                            assert_eq!(
                                resp.get("error")
                                    .and_then(|e| e.get("code"))
                                    .and_then(Json::as_str),
                                Some("aborted"),
                                "{resp}"
                            );
                            assert_eq!(wire_digest(&mut c), before, "aborted exec leaked state");
                            // The cyclic orderings were rolled back too.
                            c.expect_ok(&op(r#"{"op":"analyze"}"#)).expect("analyze");
                        }
                    }
                    let d = wire_digest(&mut c);
                    c.quit().expect("quit");
                    d
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session"))
            .collect()
    });

    for (i, expected) in expected.iter().enumerate() {
        if let Some(expected) = expected {
            assert_eq!(&got[i], expected, "well-behaved session {i} was perturbed");
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn eval_mode_is_isolated_across_sessions() {
    // One session on the interpreter path, one on the plan path,
    // concurrently: identical observable results, and neither flips the
    // other (the regression this guards: the old process-global
    // FORCE_INTERP override).
    let script = base_script();
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let digests: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["plan", "interp"]
            .into_iter()
            .map(|mode| {
                let script = &script;
                scope.spawn(move || {
                    let mut c = Client::connect_ready(addr, READY).expect("connect");
                    let mut load = load_op(script);
                    if let Json::Obj(pairs) = &mut load {
                        pairs.push(("eval_mode".into(), Json::from(mode)));
                    }
                    c.expect_ok(&load).expect("load");
                    c.expect_ok(&exec_op(&exec_sql(7))).expect("exec");
                    let d = wire_digest(&mut c);
                    c.quit().expect("quit");
                    d
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session"))
            .collect()
    });
    assert_eq!(digests[0], digests[1], "plan and interp sessions diverged");
    server.shutdown();
    server.join();
}

/// The §6.4 refinement loop over the wire: certify → analyze → order →
/// analyze on one session reuses pair verdicts (visible through the
/// `stats` op's per-session `pair_cache` counters) and never leaks
/// analyzer state into a neighbor session on the same program.
#[test]
fn refinement_stats_are_per_session() {
    use std::fmt::Write as _;
    // Eight same-shape conflicting rules: a single-rule refinement dirties
    // well under half the pairs, so warm analyzes take the incremental path.
    let mut script = String::from("create table t (x int);\ncreate table u (x int);\n");
    for name in ["a", "b", "c", "d", "e", "f", "g", "h"] {
        let _ = writeln!(
            script,
            "create rule {name} on t when inserted then update u set x = 1 end;"
        );
    }

    let pair_cache = |c: &mut Client| -> Json {
        c.expect_ok(&op(r#"{"op":"stats"}"#))
            .expect("stats")
            .get("session")
            .and_then(|s| s.get("pair_cache"))
            .expect("session.pair_cache in stats")
            .clone()
    };
    let count = |j: &Json, key: &str| j.get(key).and_then(Json::as_i64).expect(key);

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut refiner = Client::connect_ready(addr, READY).expect("connect");
    let mut bystander = Client::connect_ready(addr, READY).expect("connect");
    refiner.expect_ok(&load_op(&script)).expect("load");
    bystander.expect_ok(&load_op(&script)).expect("load");

    refiner.expect_ok(&op(r#"{"op":"analyze"}"#)).expect("cold");
    let cold = pair_cache(&mut refiner);
    assert_eq!(count(&cold, "full_sweeps"), 1);

    refiner
        .expect_ok(&op(r#"{"op":"certify","kind":"commute","a":"a","b":"b"}"#))
        .expect("certify");
    refiner.expect_ok(&op(r#"{"op":"analyze"}"#)).expect("warm");
    let warm = pair_cache(&mut refiner);
    assert!(count(&warm, "hits") > count(&cold, "hits"), "{warm}");
    // Exactly the certified pair's verdict was invalidated.
    assert_eq!(
        count(&warm, "invalidations"),
        count(&cold, "invalidations") + 1
    );

    refiner
        .expect_ok(&op(r#"{"op":"order","higher":"a","lower":"b"}"#))
        .expect("order");
    refiner
        .expect_ok(&op(r#"{"op":"analyze"}"#))
        .expect("warm2");
    let after = pair_cache(&mut refiner);
    assert_eq!(count(&after, "full_sweeps"), 1, "{after}");
    assert_eq!(count(&after, "incremental_sweeps"), 2, "{after}");

    // The bystander session shares the cached program but not the analyzer:
    // its counters are untouched by the refiner's certify/order/analyze.
    let other = pair_cache(&mut bystander);
    assert_eq!(count(&other, "hits"), 0, "{other}");
    assert_eq!(count(&other, "invalidations"), 0, "{other}");
    assert_eq!(count(&other, "full_sweeps"), 0, "{other}");

    refiner.quit().expect("quit");
    bystander.quit().expect("quit");
    server.shutdown();
    server.join();
}

/// Provenance counters surfaced by the `stats` op are per-session: an
/// explore + explain on one session bumps its `traces_recorded` /
/// `witnesses_extracted`, while a neighbor session on the same cached
/// program stays at zero.
#[test]
fn provenance_counters_are_per_session() {
    // Two unordered rules rewriting the same cell with non-commuting
    // assignments — the canonical divergent shape, so `explain` must
    // extract a replay-verified witness.
    let script = "create table t (x int);\n\
                  create table out1 (v int);\n\
                  insert into out1 values (0);\n\
                  create rule a on t when inserted then update out1 set v = (2 - v) end;\n\
                  create rule b on t when inserted then update out1 set v = 5 end;\n\
                  insert into t values (1);\n";

    let provenance = |c: &mut Client| -> Json {
        c.expect_ok(&op(r#"{"op":"stats"}"#))
            .expect("stats")
            .get("session")
            .and_then(|s| s.get("provenance"))
            .expect("session.provenance in stats")
            .clone()
    };
    let count = |j: &Json, key: &str| j.get(key).and_then(Json::as_i64).expect(key);

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut explainer = Client::connect_ready(addr, READY).expect("connect");
    let mut bystander = Client::connect_ready(addr, READY).expect("connect");
    explainer.expect_ok(&load_op(script)).expect("load");
    bystander.expect_ok(&load_op(script)).expect("load");

    explainer
        .expect_ok(&op(r#"{"op":"explore"}"#))
        .expect("explore");
    let resp = explainer
        .expect_ok(&op(r#"{"op":"explain"}"#))
        .expect("explain");
    let witness = resp.get("witness").expect("witness field");
    assert_ne!(
        witness,
        &Json::Null,
        "divergent program must yield a witness"
    );
    assert_eq!(
        witness.get("replay_verified"),
        Some(&Json::Bool(true)),
        "{resp}"
    );

    let mine = provenance(&mut explainer);
    // One trace from the explore, one from the explain's re-exploration.
    assert_eq!(count(&mine, "traces_recorded"), 2, "{mine}");
    assert!(count(&mine, "choice_points") >= 1, "{mine}");
    assert_eq!(count(&mine, "witnesses_extracted"), 1, "{mine}");

    // The bystander shares the compiled program, not the counters.
    let other = provenance(&mut bystander);
    for key in [
        "traces_recorded",
        "choice_points",
        "witnesses_extracted",
        "minimization_steps",
    ] {
        assert_eq!(count(&other, key), 0, "bystander {key}: {other}");
    }

    explainer.quit().expect("quit");
    bystander.quit().expect("quit");
    server.shutdown();
    server.join();
}
