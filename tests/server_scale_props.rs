//! Scale-out properties of the pooled server: thousands of concurrent
//! pipelined sessions byte-identical to serial replay, budget-weighted
//! fair scheduling, typed `overloaded` admission refusals, and fault
//! containment (mid-pipeline disconnects, half-written lines, worker
//! panics) — extending the 64-session cap in `tests/server_isolation.rs`
//! to the event-loop + worker-pool executor.
//!
//! Concurrency caveat (the Hellerstein determination-provenance framing):
//! under a pool the server admits many legal interleavings, so these
//! tests pin *observable equivalence* — byte-identical response lines,
//! per-connection response order, completion-order and scheduler-round
//! bounds — never timings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use starling_server::{
    ok_response, raise_fd_limit, Client, ClientError, DurableRoot, ScriptCache, Server,
    ServerConfig, ServerSession,
};
use starling_sql::json::Json;
use starling_storage::SyncPolicy;

/// How long a test client polls for server readiness before giving up.
const READY: Duration = Duration::from_secs(10);

fn op(json: &str) -> Json {
    Json::parse(json).expect("test op json")
}

fn load_op(script: &str) -> Json {
    Json::obj([("op", Json::from("load")), ("script", Json::from(script))])
}

fn with_id(mut req: Json, id: i64) -> Json {
    if let Json::Obj(pairs) = &mut req {
        pairs.insert(0, ("id".into(), Json::Int(id)));
    }
    req
}

/// The shared program: seeded accounts, an audit rule, and a capping rule
/// (same shape as `server_isolation.rs`).
fn base_script() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("create table acct (id int, bal int);\n");
    s.push_str("create table log (id int, bal int);\n");
    for i in 0..12 {
        let _ = writeln!(s, "insert into acct values ({i}, {});", (i * 7) % 90);
    }
    s.push_str(
        "create rule audit on acct when inserted then \
           insert into log select id, bal from inserted end;\n\
         create rule cap on acct when inserted, updated(bal) \
           if exists (select * from acct where bal > 100) \
           then update acct set bal = 100 where bal > 100 end;\n",
    );
    s
}

/// A non-terminating program whose `exec` runtime scales linearly with its
/// consideration budget — the knob the heavy-session tests turn.
const GROW: &str = "create table t (x int);\n\
                    create rule grow on t when inserted then \
                      insert into t select x + 1 from inserted end;";

fn exec_sql(i: usize) -> String {
    format!(
        "insert into acct values ({}, {});",
        2000 + i,
        (i * 13) % 150
    )
}

fn exec_op(sql: &str) -> Json {
    Json::obj([("op", Json::from("exec")), ("sql", Json::from(sql))])
}

/// A `GROW` exec sized by consideration budget (runtime knob) with a
/// wall-clock backstop so a scheduling bug degrades into a failed
/// assertion rather than a hung test.
fn heavy_exec(considerations: usize) -> Json {
    Json::obj([
        ("op", Json::from("exec")),
        ("sql", Json::from("insert into t values (1);")),
        (
            "budget",
            Json::obj([
                ("max_considerations", Json::from(considerations as i64)),
                ("timeout_ms", Json::from(20_000i64)),
            ]),
        ),
    ])
}

/// The per-session request pipeline whose responses are compared
/// byte-for-byte against serial replay.
fn session_batch(script: &str, i: usize) -> Vec<Json> {
    vec![
        with_id(load_op(script), 1),
        with_id(exec_op(&exec_sql(i)), 2),
        with_id(op(r#"{"op":"digest"}"#), 3),
        with_id(
            op(r#"{"op":"certify","kind":"commute","a":"audit","b":"cap"}"#),
            4,
        ),
    ]
}

/// Serial single-session replay of [`session_batch`], rendered to the
/// exact response lines the wire must produce.
fn serial_reference(script: &str, i: usize, cache: &ScriptCache) -> Vec<String> {
    let mut s = ServerSession::new();
    session_batch(script, i)
        .iter()
        .map(|req| {
            let id = req.get("id").cloned();
            let op = req.get("op").and_then(Json::as_str).expect("op").to_owned();
            match s.handle_op(&op, req, cache) {
                Ok(result) => ok_response(id.as_ref(), result),
                Err((code, message, data)) => {
                    starling_server::err_response(id.as_ref(), code, &message, data)
                }
            }
        })
        .collect()
}

/// Reads scheduler counters through the `stats` op.
fn sched_stats(c: &mut Client) -> Json {
    c.expect_ok(&op(r#"{"op":"stats"}"#))
        .expect("stats")
        .get("server")
        .and_then(|s| s.get("scheduler"))
        .expect("server.scheduler in stats")
        .clone()
}

fn count(j: &Json, key: &str) -> i64 {
    j.get(key).and_then(Json::as_i64).expect(key)
}

/// 2k+ concurrent pipelined sessions, byte-identical to serial replay.
///
/// Every session pipelines its whole request batch in one write; the
/// response lines must (a) be byte-identical to an in-process serial
/// replay of the same ops — covering protocol decode under decode-ahead,
/// snapshot isolation, cache single-flight, and cross-session leakage in
/// one comparison — and (b) arrive in request order per connection (the
/// embedded `id`s are part of the compared bytes).
#[test]
fn two_thousand_pipelined_sessions_match_serial_replay() {
    let limit = raise_fd_limit(16 * 1024);
    // Each session holds one socket on each side of the loopback plus
    // headroom for the harness; scale down only if the hard fd limit is
    // unusually low.
    let sessions: usize = if limit >= 8 * 1024 {
        2048
    } else {
        (limit as usize / 4).clamp(128, 2048)
    };
    const DRIVERS: usize = 32;
    let script = base_script();

    // Pre-warm the reference cache so `"cached"` is deterministic in both
    // replays (exactly one cold load each, outside the compared sessions).
    let cache = ScriptCache::new();
    cache.load(&script).expect("reference load");
    let expected: Vec<Vec<String>> = (0..sessions)
        .map(|i| serial_reference(&script, i, &cache))
        .collect();

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut warm = Client::connect_ready(addr, READY).expect("warm connect");
    warm.expect_ok(&load_op(&script)).expect("warm load");
    warm.quit().expect("warm quit");

    let got: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..DRIVERS)
            .map(|d| {
                let script = &script;
                scope.spawn(move || {
                    let mine: Vec<usize> = (0..sessions).filter(|i| i % DRIVERS == d).collect();
                    // Connect everything first so all sessions are
                    // concurrently live, then pipeline each batch.
                    let mut conns: Vec<Client> = mine
                        .iter()
                        .map(|_| Client::connect_ready(addr, READY).expect("connect"))
                        .collect();
                    for (c, &i) in conns.iter_mut().zip(&mine) {
                        c.send_batch(&session_batch(script, i)).expect("send");
                    }
                    let mut out = Vec::with_capacity(mine.len());
                    for (c, &i) in conns.iter_mut().zip(&mine) {
                        let lines: Vec<String> = (0..4)
                            .map(|_| c.read_line().expect("response line"))
                            .collect();
                        c.quit().expect("quit");
                        out.push((i, lines));
                    }
                    out
                })
            })
            .collect();
        let mut got = vec![Vec::new(); sessions];
        for h in handles {
            for (i, lines) in h.join().expect("driver") {
                got[i] = lines;
            }
        }
        got
    });

    for i in 0..sessions {
        assert_eq!(
            got[i], expected[i],
            "session {i} diverged from serial replay"
        );
    }
    // Single-flight: all concurrent loads of the one script were served by
    // the warm-up compilation.
    let (_, misses) = server.shared().cache.stats();
    assert_eq!(misses, 1, "single-flight cache under the pool");
    server.shutdown();
    server.join();
}

/// Within one connection the scheduler must never reorder: a pipelined
/// heavy `explore` followed by cheap ops answers strictly in request
/// order, even though the cheap ops would be scheduled first if they were
/// on their own connections.
#[test]
fn pipelined_responses_preserve_request_order() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let mut c = Client::connect_ready(server.local_addr(), READY).expect("connect");
    c.expect_ok(&load_op(&format!(
        "{}insert into acct values (1000, 5);\n",
        base_script()
    )))
    .expect("load");
    let reqs = vec![
        with_id(op(r#"{"op":"explore"}"#), 1),
        with_id(op(r#"{"op":"ping"}"#), 2),
        with_id(op(r#"{"op":"digest"}"#), 3),
        with_id(op(r#"{"op":"ping"}"#), 4),
    ];
    let resps = c.pipeline(&reqs).expect("pipeline");
    for (k, resp) in resps.iter().enumerate() {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        assert_eq!(
            resp.get("id").and_then(Json::as_i64),
            Some(k as i64 + 1),
            "response {k} out of order: {resp}"
        );
    }
    c.quit().expect("quit");
    server.shutdown();
    server.join();
}

/// Budget-weighted fairness: with a single worker, a heavy session that
/// pipelined two huge execs cannot starve 64 cheap sessions — every cheap
/// op completes before the heavy session's *second* exec completes, and
/// the whole cheap burst consumes a bounded number of scheduler rounds
/// (a count, not a wall-clock bound).
///
/// The guarantee under test is the weighted-fair-queueing order: cheap
/// requests enqueued while heavy #1 holds the worker all carry smaller
/// virtual finish times than heavy #2, so the scheduler must drain the
/// whole cheap burst before giving the heavy session the worker back.
/// The cheap sessions pipeline their batch in one write (no round-trip
/// gaps), so the queue never runs dry and hands #2 an early turn.
#[test]
fn cheap_sessions_pass_a_heavy_pipeline() {
    let cfg = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind_cfg("127.0.0.1:0", None, cfg).expect("bind");
    let addr = server.local_addr();
    let script = base_script();

    // Taken while the worker is still idle; `stats` is a control-plane op,
    // so the monitor stays responsive even with the worker saturated later.
    let mut monitor = Client::connect_ready(addr, READY).expect("monitor");
    let rounds0 = count(&sched_stats(&mut monitor), "rounds");

    let heavy2_done = AtomicBool::new(false);
    let heavy_sent = AtomicBool::new(false);
    let cheap_requests = 64 * 2; // per session: pipelined load + certify

    std::thread::scope(|scope| {
        let heavy2_done = &heavy2_done;
        let heavy_sent = &heavy_sent;
        let script = &script;
        let heavy = scope.spawn(move || {
            let mut c = Client::connect_ready(addr, READY).expect("heavy connect");
            c.expect_ok(&load_op(GROW)).expect("load grow");
            // Two pipelined heavy execs: #1 occupies the only worker while
            // the cheap burst arrives; #2 is the starvation probe — under
            // weighted fairness every cheap op overtakes it.
            c.send_batch(&[
                with_id(heavy_exec(400_000), 1),
                with_id(heavy_exec(50_000), 2),
            ])
            .expect("send heavy");
            heavy_sent.store(true, Ordering::SeqCst);
            let r1 = c.recv().expect("heavy #1");
            assert_eq!(
                r1.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("inconclusive"),
                "heavy #1 should exhaust its budget: {r1}"
            );
            let r2 = c.recv().expect("heavy #2");
            heavy2_done.store(true, Ordering::SeqCst);
            assert_eq!(
                r2.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("inconclusive"),
                "{r2}"
            );
            c.quit().expect("heavy quit");
        });

        // Start the burst only after the heavy pipeline is on the wire (a
        // start gate, not a correctness bound — the assertions below are
        // order-based). The brief sleep lets the reactor decode it and the
        // worker pick up exec #1, which then runs for seconds.
        while !heavy_sent.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(100));

        let cheap: Vec<_> = (0..64)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("cheap connect");
                    c.set_request_timeout(Some(Duration::from_secs(60)))
                        .expect("timeout");
                    // One write, two responses: the conn's FIFO holds both
                    // requests at once, so the worker never idles between
                    // them waiting on a client round-trip.
                    let resps = c
                        .pipeline(&[
                            load_op(script),
                            op(r#"{"op":"certify","kind":"commute","a":"audit","b":"cap"}"#),
                        ])
                        .expect("cheap pipeline");
                    for r in &resps {
                        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
                    }
                    // Drop without quit: a quit would queue behind heavy #2.
                })
            })
            .collect();
        for h in cheap {
            h.join().expect("cheap session");
        }
        assert!(
            !heavy2_done.load(Ordering::SeqCst),
            "all 64 cheap sessions finished, but the heavy session's second \
             exec completed ahead of some of them"
        );
        let rounds_after_burst = count(&sched_stats(&mut monitor), "rounds");
        assert!(
            rounds_after_burst - rounds0 <= cheap_requests + 64,
            "cheap burst took {} scheduler rounds (bound {})",
            rounds_after_burst - rounds0,
            cheap_requests + 64
        );
        heavy.join().expect("heavy session");
    });

    monitor.quit().expect("monitor quit");
    server.shutdown();
    server.join();
}

/// Admission control: past `max_inflight` admitted-but-not-completed
/// requests, new requests are refused with the typed `overloaded` code —
/// which round-trips through `client.rs` as [`ClientError::Overloaded`] —
/// refusals keep their slot in the pipelined response order, control-plane
/// `stats` stays answerable at the cap, and admission recovers once the
/// gauge drains.
#[test]
fn overload_refusals_are_typed_and_ordered() {
    // Two heavy execs saturate the admission gauge (cap 2) and occupy two
    // workers; the third worker keeps delivering refusals and stats while
    // the server is "full".
    let cfg = ServerConfig {
        workers: 3,
        max_inflight: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind_cfg("127.0.0.1:0", None, cfg).expect("bind");
    let addr = server.local_addr();

    let mut monitor = Client::connect_ready(addr, READY).expect("monitor");
    let mut heavy_a = Client::connect_ready(addr, READY).expect("heavy a connect");
    let mut heavy_b = Client::connect_ready(addr, READY).expect("heavy b connect");
    heavy_a.expect_ok(&load_op(GROW)).expect("load grow a");
    heavy_b.expect_ok(&load_op(GROW)).expect("load grow b");
    heavy_a.send(&heavy_exec(400_000)).expect("send heavy a");
    heavy_b.send(&heavy_exec(400_000)).expect("send heavy b");

    // `stats` bypasses admission, so the monitor can watch the gauge fill.
    let deadline = std::time::Instant::now() + READY;
    loop {
        let s = sched_stats(&mut monitor);
        if count(&s, "pending") >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "admission gauge never reached the cap: {s}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // A pipelined batch at the cap: every request is refused, and the
    // refusals hold their slots — ids come back 1, 2, 3.
    let mut c = Client::connect(addr).expect("connect");
    c.send_batch(&[
        with_id(op(r#"{"op":"ping"}"#), 1),
        with_id(op(r#"{"op":"ping"}"#), 2),
        with_id(op(r#"{"op":"ping"}"#), 3),
    ])
    .expect("send pings");
    for want_id in 1i64..=3 {
        let r = c.recv().expect("refusal");
        assert_eq!(r.get("id").and_then(Json::as_i64), Some(want_id), "{r}");
        let err = Client::result_of(&r).expect_err("refused");
        assert!(
            matches!(err, ClientError::Overloaded(_)),
            "expected ClientError::Overloaded, got {err:?} for {r}"
        );
    }

    // A fresh single-shot request surfaces the refusal as the typed
    // client-side error.
    let mut other = Client::connect(addr).expect("other connect");
    let err = other
        .try_expect_ok(&op(r#"{"op":"ping"}"#))
        .expect_err("must be refused at the admission cap");
    assert!(
        matches!(err, ClientError::Overloaded(_)),
        "expected ClientError::Overloaded, got {err:?}"
    );

    // The overloaded server is still observable: stats answers at the cap
    // and reports both the full gauge and the refusals it issued.
    let s = sched_stats(&mut monitor);
    assert_eq!(count(&s, "pending"), 2, "{s}");
    assert!(count(&s, "refused") >= 4, "{s}");

    // Drain: both heavy execs exhaust their budgets; admission recovers.
    for heavy in [&mut heavy_a, &mut heavy_b] {
        let r = heavy.recv().expect("heavy response");
        assert_eq!(
            r.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("inconclusive"),
            "{r}"
        );
    }
    let pong = other
        .try_expect_ok(&op(r#"{"op":"ping"}"#))
        .expect("recovered after drain");
    assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

    heavy_a.quit().expect("heavy a quit");
    heavy_b.quit().expect("heavy b quit");
    monitor.quit().expect("monitor quit");
    c.quit().expect("quit");
    other.quit().expect("other quit");
    server.shutdown();
    server.join();
}

/// Fault injection on the pooled path: a mid-pipeline disconnect and a
/// half-written request line must leave neighbor sessions intact and the
/// dropped session's durable store unlocked for re-attachment.
#[test]
fn mid_pipeline_disconnect_leaves_neighbors_and_stores_intact() {
    let dir = std::env::temp_dir().join(format!("starling-scale-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind_with(
        "127.0.0.1:0",
        Some(DurableRoot::new(&dir, SyncPolicy::Always)),
    )
    .expect("bind");
    let addr = server.local_addr();
    let script = base_script();

    // The neighbor connects first and must be untouched by everything below.
    let mut neighbor = Client::connect_ready(addr, READY).expect("neighbor");
    neighbor
        .expect_ok(&load_op(&script))
        .expect("neighbor load");

    // Victim: attach a durable store, pipeline a burst of execs, read only
    // one response, vanish without quit.
    {
        let mut victim = Client::connect_ready(addr, READY).expect("victim");
        let mut attach = load_op(&script);
        if let Json::Obj(pairs) = &mut attach {
            pairs.push(("persist".into(), Json::from("s1")));
        }
        victim.expect_ok(&attach).expect("victim attach");
        let burst: Vec<Json> = (0..8).map(|i| exec_op(&exec_sql(i))).collect();
        victim.send_batch(&burst).expect("victim burst");
        let first = victim.recv().expect("victim first response");
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first}");
        // Drop mid-pipeline: 7 responses undelivered.
    }

    // Half-written request line, then vanish.
    {
        use std::io::Write as _;
        let mut half = std::net::TcpStream::connect(addr).expect("half connect");
        half.write_all(b"{\"op\":\"pi").expect("half write");
        // No newline, no shutdown: just drop.
    }

    // The neighbor session never noticed.
    neighbor
        .expect_ok(&exec_op(&exec_sql(40)))
        .expect("neighbor exec");
    neighbor
        .expect_ok(&op(r#"{"op":"digest"}"#))
        .expect("neighbor digest");

    // The victim's store unlocks once its session is swept; poll until the
    // re-attach succeeds (sweep is asynchronous but prompt).
    let deadline = std::time::Instant::now() + READY;
    let mut taker = Client::connect_ready(addr, READY).expect("taker");
    let reattach = loop {
        let mut attach = op(r#"{"op":"load"}"#);
        if let Json::Obj(pairs) = &mut attach {
            pairs.push(("persist".into(), Json::from("s1")));
        }
        match taker.try_expect_ok(&attach) {
            Ok(result) => break result,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "store s1 still locked after victim disconnect: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(
        reattach.get("recovered"),
        Some(&Json::Bool(true)),
        "{reattach}"
    );
    // The reattached store accepts writes — fully unlocked, not half-dead.
    taker
        .expect_ok(&exec_op(&exec_sql(41)))
        .expect("taker exec");

    taker.quit().expect("taker quit");
    neighbor.quit().expect("neighbor quit");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker panic mid-request (the test-only `crash` op) closes only the
/// offending connection: neighbors keep their sessions, the panicking
/// session's durable store is released, and the server still drains
/// cleanly afterwards.
#[test]
fn worker_panic_is_contained() {
    let dir = std::env::temp_dir().join(format!("starling-scale-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        workers: 2,
        crash_op: true,
        ..ServerConfig::default()
    };
    let server = Server::bind_cfg(
        "127.0.0.1:0",
        Some(DurableRoot::new(&dir, SyncPolicy::Always)),
        cfg,
    )
    .expect("bind");
    let addr = server.local_addr();
    let script = base_script();

    let mut neighbor = Client::connect_ready(addr, READY).expect("neighbor");
    neighbor
        .expect_ok(&load_op(&script))
        .expect("neighbor load");

    // The crasher holds a durable store when its worker panics.
    let mut crasher = Client::connect_ready(addr, READY).expect("crasher");
    let mut attach = load_op(&script);
    if let Json::Obj(pairs) = &mut attach {
        pairs.push(("persist".into(), Json::from("s1")));
    }
    crasher.expect_ok(&attach).expect("crasher attach");
    crasher.send(&op(r#"{"op":"crash"}"#)).expect("send crash");
    // The contained panic closes the connection without a response.
    let eof = crasher.read_response();
    assert!(eof.is_err(), "crash must close the connection, got {eof:?}");

    // Neighbors are unaffected, across both workers.
    for _ in 0..8 {
        neighbor
            .expect_ok(&op(r#"{"op":"ping"}"#))
            .expect("neighbor ping");
    }
    neighbor
        .expect_ok(&exec_op(&exec_sql(1)))
        .expect("neighbor exec");

    // The crashed session's store is released and re-attachable.
    let deadline = std::time::Instant::now() + READY;
    let mut taker = Client::connect_ready(addr, READY).expect("taker");
    loop {
        let mut attach = op(r#"{"op":"load"}"#);
        if let Json::Obj(pairs) = &mut attach {
            pairs.push(("persist".into(), Json::from("s1")));
        }
        match taker.try_expect_ok(&attach) {
            Ok(_) => break,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "store s1 still locked after worker panic: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    taker.quit().expect("taker quit");
    neighbor.quit().expect("neighbor quit");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Idle sessions are parked state objects, not threads: opening hundreds
/// of extra idle connections must not grow the process thread count
/// (server and test share one process, so `/proc/self/status` is exact).
#[cfg(target_os = "linux")]
#[test]
fn idle_sessions_cost_no_threads() {
    raise_fd_limit(4096);
    let threads = || -> i64 {
        let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    };
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut first = Client::connect_ready(addr, READY).expect("first");
    let before = threads();
    let idle: Vec<Client> = (0..512)
        .map(|_| Client::connect(addr).expect("idle connect"))
        .collect();
    // Make the accepts observable before measuring.
    first.expect_ok(&op(r#"{"op":"ping"}"#)).expect("ping");
    let after = threads();
    // Other tests in this binary run concurrently and spawn their own
    // threads, so allow unrelated jitter — what matters is that 512 idle
    // sessions did not cost ~512 threads (the legacy executor's price).
    assert!(
        after <= before + 64,
        "512 idle connections grew the thread count {before} -> {after}"
    );
    drop(idle);
    first.quit().expect("quit");
    server.shutdown();
    server.join();
}
