//! Property tests for the copy-on-write snapshot layer, the incremental
//! per-table digest cache, and the parallel execution-graph oracle:
//!
//! * a CoW clone plus divergent mutation is observationally equal to a deep
//!   copy — the snapshot never sees writes through the other handle, and
//!   both sides digest as if fully independent;
//! * the incrementally maintained per-table content digest always equals a
//!   from-scratch recompute, under arbitrary insert/update/delete
//!   sequences;
//! * parallel `explore` produces a graph identical to sequential `explore`
//!   on randomized rule workloads (the fault-sweep generator family).

use proptest::prelude::*;

use starling::engine::{explore, explore_parallel, ExploreConfig};
use starling::storage::{
    CanonicalDigest, ColumnDef, Database, FaultPlan, FaultSpec, TableSchema, TupleId, Value,
    ValueType,
};
use starling::workloads::random::{generate, RandomConfig};

const TABLES: [&str; 3] = ["t0", "t1", "t2"];

/// One randomized storage operation against a two-column table picked by
/// index; delete/update target a row by rank so they stay valid whatever
/// ids previous operations produced.
#[derive(Clone, Debug)]
enum StorageOp {
    Insert { table: usize, a: i64, b: i64 },
    Update { table: usize, rank: usize, a: i64 },
    Delete { table: usize, rank: usize },
}

fn storage_ops() -> impl Strategy<Value = Vec<StorageOp>> {
    let op =
        prop_oneof![
            (0..TABLES.len(), -50i64..50, -50i64..50).prop_map(|(table, a, b)| StorageOp::Insert {
                table,
                a,
                b
            }),
            (0..TABLES.len(), 0usize..8, -50i64..50)
                .prop_map(|(table, rank, a)| StorageOp::Update { table, rank, a }),
            (0..TABLES.len(), 0usize..8)
                .prop_map(|(table, rank)| StorageOp::Delete { table, rank }),
        ];
    proptest::collection::vec(op, 0..40)
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    for name in TABLES {
        db.create_table(
            TableSchema::new(
                name,
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::new("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    }
    db
}

fn apply(db: &mut Database, op: &StorageOp) {
    match *op {
        StorageOp::Insert { table, a, b } => {
            db.insert(TABLES[table], vec![Value::Int(a), Value::Int(b)])
                .unwrap();
        }
        StorageOp::Update { table, rank, a } => {
            let ids = db.table(TABLES[table]).unwrap().ids();
            if ids.is_empty() {
                return;
            }
            let id = ids[rank % ids.len()];
            db.update_column(TABLES[table], id, "a", Value::Int(a))
                .unwrap();
        }
        StorageOp::Delete { table, rank } => {
            let ids = db.table(TABLES[table]).unwrap().ids();
            if ids.is_empty() {
                return;
            }
            db.delete(TABLES[table], ids[rank % ids.len()]).unwrap();
        }
    }
}

/// An id-faithful deep copy built through the public API — what `clone()`
/// used to cost before copy-on-write, used as the observational reference.
fn deep_copy(db: &Database) -> Database {
    let mut out = Database::new();
    for t in db.tables() {
        out.create_table(t.schema().clone()).unwrap();
        for (id, row) in t.iter() {
            out.insert_with_id(t.name(), id, row.clone()).unwrap();
        }
    }
    out
}

/// One table's rows with ids, in scan order.
type TableDump = Vec<(TupleId, Vec<Value>)>;

/// Full observable dump: every table's rows with ids, in scan order.
fn dump(db: &Database) -> Vec<(String, TableDump)> {
    db.tables()
        .map(|t| {
            (
                t.name().to_owned(),
                t.iter().map(|(id, row)| (id, row.clone())).collect(),
            )
        })
        .collect()
}

proptest! {
    /// A CoW snapshot diverging from its origin behaves exactly like a deep
    /// copy would: the snapshot keeps the pre-divergence contents and
    /// digests, the origin sees only its own writes, and both equal deep
    /// copies built row by row through the public API.
    #[test]
    fn cow_clone_is_observationally_a_deep_copy(
        prefix in storage_ops(),
        suffix in storage_ops(),
    ) {
        let mut live = fresh_db();
        for op in &prefix {
            apply(&mut live, op);
        }
        let snap = live.clone();
        let reference = deep_copy(&snap);
        prop_assert_eq!(live.shares_tables_with(&snap), true);

        for op in &suffix {
            apply(&mut live, op);
        }

        // The snapshot is frozen at the clone point…
        prop_assert_eq!(dump(&snap), dump(&reference));
        prop_assert_eq!(snap.state_digest(), reference.state_digest());
        // …and the diverged handle equals a deep copy of itself (its
        // incremental digests survived the unsharing).
        let live_reference = deep_copy(&live);
        prop_assert_eq!(dump(&live), dump(&live_reference));
        prop_assert_eq!(live.state_digest(), live_reference.state_digest());
    }

    /// Unlike table storage, fault-plan counters stay shared across CoW
    /// clones (injection counts are global to the transaction): a clone
    /// sees the fault state through the same `Arc` as its origin.
    #[test]
    fn cow_clone_shares_fault_counters(prefix in storage_ops()) {
        let mut live = fresh_db();
        for op in &prefix {
            apply(&mut live, op);
        }
        live.install_fault_plan(FaultPlan::single(FaultSpec::nth(u64::MAX)));
        let snap = live.clone();
        let (a, b) = (live.fault_state().unwrap(), snap.fault_state().unwrap());
        prop_assert!(std::sync::Arc::ptr_eq(a, b));
    }

    /// The incrementally maintained per-table content digest equals a
    /// from-scratch recompute after any operation sequence — on the mutated
    /// handle *and* on a snapshot taken mid-sequence.
    #[test]
    fn incremental_digest_equals_recompute(
        prefix in storage_ops(),
        suffix in storage_ops(),
    ) {
        let mut db = fresh_db();
        for op in &prefix {
            apply(&mut db, op);
        }
        let snap = db.clone();
        for op in &suffix {
            apply(&mut db, op);
        }
        for handle in [&db, &snap] {
            for t in handle.tables() {
                prop_assert_eq!(t.content_digest(), t.recompute_content_digest());
                // The cached digest is what the canonical table digest
                // reads, so it must move in lockstep.
                let _ = t.digest();
            }
        }
    }

    /// Parallel exploration is byte-identical to sequential exploration on
    /// randomized workloads (the generator family the fault sweep uses).
    #[test]
    fn parallel_explore_equals_sequential_on_random_workloads(
        seed in 0u64..24,
        salt in 0u64..3,
    ) {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 4,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.2,
            p_priority: 0.2,
            rows_per_table: 2,
            seed,
        });
        let rules = w.compile();
        let base = w.seed_database();
        let actions = w.user_transition(salt);
        let cfg = ExploreConfig::default()
            .with_max_states(600)
            .with_max_paths(2_000);
        let seq = explore(&rules, &base, &actions, &cfg);
        let par = explore_parallel(&rules, &base, &actions, &cfg);
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(a.final_db_digests(), b.final_db_digests());
                prop_assert_eq!(a.truncation, b.truncation);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }
    }
}
