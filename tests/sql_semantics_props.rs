//! Property tests on the SQL evaluator's semantics: Kleene three-valued
//! logic laws, LIKE against a reference matcher, and aggregate identities.

use proptest::prelude::*;

use starling::sql::eval::expr::{and3, like_match, not3, or3};
use starling::storage::Value;

fn tv() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        Just(Value::Null),
    ]
}

proptest! {
    /// Kleene logic: commutativity, De Morgan, double negation, identity
    /// and annihilator elements.
    #[test]
    fn kleene_laws(a in tv(), b in tv()) {
        prop_assert_eq!(and3(a.clone(), b.clone()), and3(b.clone(), a.clone()));
        prop_assert_eq!(or3(a.clone(), b.clone()), or3(b.clone(), a.clone()));
        // De Morgan.
        prop_assert_eq!(
            not3(and3(a.clone(), b.clone())),
            or3(not3(a.clone()), not3(b.clone()))
        );
        prop_assert_eq!(
            not3(or3(a.clone(), b.clone())),
            and3(not3(a.clone()), not3(b.clone()))
        );
        // Double negation.
        prop_assert_eq!(not3(not3(a.clone())), a.clone());
        // Identity / annihilator.
        prop_assert_eq!(and3(a.clone(), Value::Bool(true)), a.clone());
        prop_assert_eq!(or3(a.clone(), Value::Bool(false)), a.clone());
        prop_assert_eq!(and3(a.clone(), Value::Bool(false)), Value::Bool(false));
        prop_assert_eq!(or3(a.clone(), Value::Bool(true)), Value::Bool(true));
    }

    /// Kleene AND/OR are associative.
    #[test]
    fn kleene_associativity(a in tv(), b in tv(), c in tv()) {
        prop_assert_eq!(
            and3(a.clone(), and3(b.clone(), c.clone())),
            and3(and3(a.clone(), b.clone()), c.clone())
        );
        prop_assert_eq!(
            or3(a.clone(), or3(b.clone(), c.clone())),
            or3(or3(a.clone(), b.clone()), c.clone())
        );
    }
}

/// Reference LIKE matcher via dynamic programming, independently written.
fn like_reference(s: &str, p: &str) -> bool {
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = p.chars().collect();
    let (n, m) = (sc.len(), pc.len());
    let mut dp = vec![vec![false; m + 1]; n + 1];
    dp[0][0] = true;
    for j in 1..=m {
        if pc[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = match pc[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => sc[i - 1] == c && dp[i - 1][j - 1],
            };
        }
    }
    dp[n][m]
}

proptest! {
    /// The recursive matcher agrees with the DP reference on random
    /// strings and patterns (over a small alphabet so wildcards interact).
    #[test]
    fn like_agrees_with_reference(
        s in "[ab%_]{0,8}",
        p in "[ab%_]{0,6}",
    ) {
        prop_assert_eq!(like_match(&s, &p), like_reference(&s, &p));
    }

    /// `%` is absorbing: pattern `%p%` matches iff some substring matches p
    /// when p has no wildcards.
    #[test]
    fn percent_wraps_substring_search(s in "[ab]{0,8}", p in "[ab]{0,4}") {
        let wrapped = format!("%{p}%");
        let expect = s.contains(&p);
        prop_assert_eq!(like_match(&s, &wrapped), expect);
    }
}

// ---------------------------------------------------------------------
// Aggregate identities against straight Rust computation.
// ---------------------------------------------------------------------

use starling::prelude::*;

proptest! {
    #[test]
    fn aggregates_match_reference(vals in proptest::collection::vec(-50i64..50, 0..12)) {
        let mut session = Session::new();
        session.execute_script("create table t (a int)").unwrap();
        for v in &vals {
            session
                .execute_script(&format!("insert into t values ({v})"))
                .unwrap();
        }
        let out = session
            .execute_script("select count(*), sum(a), min(a), max(a) from t")
            .unwrap();
        let starling::engine::session::ScriptOutput::Rows(rs) = out.last().unwrap()
        else {
            panic!()
        };
        let row = &rs.rows[0];
        prop_assert_eq!(&row[0], &Value::Int(vals.len() as i64));
        if vals.is_empty() {
            prop_assert_eq!(&row[1], &Value::Null);
            prop_assert_eq!(&row[2], &Value::Null);
            prop_assert_eq!(&row[3], &Value::Null);
        } else {
            prop_assert_eq!(&row[1], &Value::Int(vals.iter().sum()));
            prop_assert_eq!(&row[2], &Value::Int(*vals.iter().min().unwrap()));
            prop_assert_eq!(&row[3], &Value::Int(*vals.iter().max().unwrap()));
        }
    }

    /// GROUP BY totals equal a hand-rolled HashMap aggregation.
    #[test]
    fn group_by_matches_reference(
        pairs in proptest::collection::vec((0i64..4, -20i64..20), 0..16)
    ) {
        let mut session = Session::new();
        session.execute_script("create table t (k int, v int)").unwrap();
        for (k, v) in &pairs {
            session
                .execute_script(&format!("insert into t values ({k}, {v})"))
                .unwrap();
        }
        let out = session
            .execute_script("select k, sum(v) from t group by k order by k")
            .unwrap();
        let starling::engine::session::ScriptOutput::Rows(rs) = out.last().unwrap()
        else {
            panic!()
        };
        let mut expect: std::collections::BTreeMap<i64, i64> = Default::default();
        for (k, v) in &pairs {
            *expect.entry(*k).or_default() += v;
        }
        let got: Vec<(Value, Value)> = rs
            .rows
            .iter()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        let want: Vec<(Value, Value)> = expect
            .into_iter()
            .map(|(k, v)| (Value::Int(k), Value::Int(v)))
            .collect();
        prop_assert_eq!(got, want);
    }
}
