//! Section 9 subsumption (experiment E6): the comparator chain
//! `Ras90-analog ⊆ ZH90-analog ⊆ HH91-analog ⊆ Starling` holds over a
//! generated corpus, and every inclusion is proper somewhere.

use starling::analysis::certifications::Certifications;
use starling::analysis::context::AnalysisContext;
use starling::baselines::compare_all;
use starling::workloads::random::{generate, RandomConfig};

#[test]
fn subsumption_chain_over_random_corpus() {
    let mut accepts = [0usize; 4]; // [starling, hh91, zh90, ras90]
    let mut proper_starling_hh91 = 0usize;
    let mut proper_hh91_zh90 = 0usize;

    for seed in 0..300 {
        // Half the corpus is dense (rules interact heavily: separates
        // Starling from the priority-blind HH91-analog), half sparse (many
        // tables, little interaction: lets the stricter criteria accept
        // something, separating the rest of the chain).
        let w = generate(&if seed < 150 {
            RandomConfig {
                n_tables: 4,
                n_cols: 2,
                n_rules: 5,
                max_actions: 1,
                p_condition: 0.4,
                p_observable: 0.1,
                p_priority: 0.4,
                rows_per_table: 2,
                seed,
            }
        } else {
            RandomConfig {
                n_tables: 10,
                n_cols: 2,
                n_rules: 3,
                max_actions: 1,
                p_condition: 0.2,
                p_observable: 0.0,
                p_priority: 0.3,
                rows_per_table: 1,
                seed,
            }
        });
        let rules = w.compile();
        let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
        let row = compare_all(&ctx);
        assert_eq!(
            row.subsumption_violation(),
            None,
            "seed {seed}: {row:?}\n{}",
            w.script()
        );
        accepts[0] += usize::from(row.starling);
        accepts[1] += usize::from(row.hh91);
        accepts[2] += usize::from(row.zh90);
        accepts[3] += usize::from(row.ras90);
        proper_starling_hh91 += usize::from(row.starling && !row.hh91);
        proper_hh91_zh90 += usize::from(row.hh91 && !row.zh90);
    }

    // Monotone acceptance counts down the chain.
    assert!(accepts[0] >= accepts[1], "{accepts:?}");
    assert!(accepts[1] >= accepts[2], "{accepts:?}");
    assert!(accepts[2] >= accepts[3], "{accepts:?}");
    // Inclusions are proper on this corpus.
    assert!(proper_starling_hh91 > 0, "{accepts:?}");
    assert!(proper_hh91_zh90 > 0, "{accepts:?}");
    // And the comparison is not vacuous.
    assert!(accepts[0] > 0, "{accepts:?}");
}
