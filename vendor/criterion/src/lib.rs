//! Offline stub of `criterion`.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This stub keeps Starling's bench targets compiling
//! and turns `cargo bench` into a smoke run: each benchmark body executes
//! **once** and its wall-clock time is printed. No statistics, no reports —
//! but every benchmarked code path still runs, so the benches double as
//! integration smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (forwards to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes batches (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (recorded nowhere by the stub).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs one benchmark body.
pub struct Bencher;

impl Bencher {
    /// Runs `routine` once, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
    }

    /// Runs `setup` then `routine` once.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
    }

    /// Like `iter_batched`, with a by-ref routine.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        black_box(routine(&mut input));
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let start = Instant::now();
    f(&mut Bencher);
    println!("bench {label:<50} smoke-ran in {:?}", start.elapsed());
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Sets the sample count (ignored: the stub runs each body once).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the measurement time (ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the warm-up time (ignored).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Final reporting hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotates throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the group sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` (bench targets build with `--test`), skip
            // the smoke run: benches are exercised by `cargo bench`.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
