//! `any::<T>()` for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_unit()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
