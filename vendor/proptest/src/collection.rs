//! Collection strategies: `vec` with a size range.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length.
    pub lo: usize,
    /// Maximum length, inclusive.
    pub hi: usize,
}

impl SizeRange {
    /// Picks a length uniformly.
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::for_test("vec-lengths");
        let s = vec(0i64..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
