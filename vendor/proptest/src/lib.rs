//! Offline, generate-only stub of `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This stub implements the subset of its API that
//! Starling's property tests use — `Strategy` with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, `any`, `Just`, ranges, tuples,
//! `collection::vec`, `sample::subsequence`, simple `[class]{m,n}` string
//! patterns, `prop_oneof!`, and the `proptest!` / `prop_assert*!` macros —
//! over a deterministic splitmix64 generator seeded from the test name.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs via the assertion
//!   message but is not minimized;
//! * **fixed determinism** — every run of a given test sees the same case
//!   sequence (override the case count with `PROPTEST_CASES`);
//! * **uniform recursion depth** — `prop_recursive` picks uniformly among
//!   expansion levels instead of sizing subtrees.

pub mod arbitrary;
pub mod collection;
pub mod persistence;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The prelude: everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias mirroring `proptest::prelude::prop`: lets tests write
    /// `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Replay-first: seeds pinned in this file's sibling
                // `.proptest-regressions` run before any novel cases, so a
                // once-found failure stays a failure until actually fixed.
                for seed in $crate::persistence::regression_seeds(file!()) {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed replaying regression seed {:#018x}: {}",
                            stringify!($name),
                            seed,
                            e
                        );
                    }
                }
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Property-test assertion: fails the current case without panicking
/// through the generator loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
