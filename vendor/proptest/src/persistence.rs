//! Regression-seed persistence: the stub's take on proptest's
//! `.proptest-regressions` files.
//!
//! The real proptest appends a `cc <hex> # shrinks to ...` line to a sibling
//! `<test-file>.proptest-regressions` whenever a property fails, and replays
//! those saved cases before generating novel ones. The stub honors the same
//! file format and replay-first contract, with one documented difference:
//! the hex blob is the real crate's full RNG state, which the stub cannot
//! reconstruct, so it derives its deterministic replay seed from the first
//! 16 hex digits. A pinned seed therefore replays a *fixed, reproducible
//! case stream* under the stub rather than the byte-exact historical
//! failure — the byte-exact input is preserved by convention as an explicit
//! `#[test]` next to the property (see DESIGN.md §"regression seeds").

use std::path::{Path, PathBuf};

/// Locates the `.proptest-regressions` sibling of a test source file, as
/// given by `file!()`. `file!()` paths are relative to the workspace root;
/// test binaries run with the *package* manifest dir as their working
/// directory, so both spellings are tried.
pub fn regressions_path(source_file: &str) -> Option<PathBuf> {
    let sibling = Path::new(source_file).with_extension("proptest-regressions");
    if sibling.exists() {
        return Some(sibling);
    }
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let joined = Path::new(&md).join(&sibling);
        if joined.exists() {
            return Some(joined);
        }
    }
    None
}

/// Parses the regression seeds out of a `.proptest-regressions` file's
/// contents: one `cc <hex> [# comment]` line per saved case, `#` comment
/// lines and blanks ignored. Seeds derive from the first 16 hex digits.
pub fn parse_seeds(contents: &str) -> Vec<u64> {
    contents
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            let head = hex.get(0..16).unwrap_or(hex);
            u64::from_str_radix(head, 16).ok()
        })
        .collect()
}

/// The regression seeds pinned for a test source file (empty when no
/// sibling file exists — the common case).
pub fn regression_seeds(source_file: &str) -> Vec<u64> {
    match regressions_path(source_file) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(contents) => parse_seeds(&contents),
            Err(_) => Vec::new(),
        },
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cc_lines_and_skips_comments() {
        let contents = "\
# Seeds for failure cases proptest has generated in the past.
#
cc 5b3772dcc25106330d2599ddf43ef1b1cc857beaec194b77f5b19b7aee12caa7 # shrinks to src = \"x\"

cc 00000000000000ff
not a seed line
";
        let seeds = parse_seeds(contents);
        assert_eq!(seeds, vec![0x5b37_72dc_c251_0633, 0xff]);
    }

    #[test]
    fn short_hex_is_tolerated() {
        assert_eq!(parse_seeds("cc abc\n"), vec![0xabc]);
    }

    #[test]
    fn missing_file_means_no_seeds() {
        assert!(regression_seeds("no/such/test_file.rs").is_empty());
    }
}
