//! Sampling strategies: order-preserving subsequences.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`subsequence`].
#[derive(Clone)]
pub struct Subsequence<T: Clone> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.items.len();
        let len = self.size.pick(rng).min(n);
        // Partial Fisher-Yates over the index set, then restore order.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..len {
            let j = rng.usize_in(i, n);
            idx.swap(i, j);
        }
        let mut chosen: Vec<usize> = idx[..len].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.items[i].clone()).collect()
    }
}

/// An order-preserving random subsequence of `items` whose length is drawn
/// from `size` (clamped to the number of items).
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_length() {
        let mut rng = TestRng::for_test("subseq");
        let s = subsequence((0..10).collect::<Vec<i32>>(), 0..=10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "order preserved: {v:?}");
        }
    }
}
