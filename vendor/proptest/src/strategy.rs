//! The `Strategy` trait and its combinators (generate-only: no shrinking).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it, and generates
    /// from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf level; `expand` wraps a
    /// strategy into the next level. Levels `0..=depth` are built eagerly
    /// and generation picks one uniformly (bounded depth by construction).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("non-empty").clone();
            levels.push(expand(prev).boxed());
        }
        Recursive { levels }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            levels: self.levels.clone(),
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.levels.len());
        self.levels[i].generate(rng)
    }
}

/// Uniform choice among same-typed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].generate(rng)
    }
}

// Integer ranges are strategies.
macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let span = (self.end as i128) - lo;
                assert!(span > 0, "cannot generate from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let span = (*self.end() as i128) - lo + 1;
                assert!(span > 0, "cannot generate from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// A Vec of strategies generates a Vec of values, one per element.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
        let neg = -5i64..5;
        for _ in 0..100 {
            assert!((-5..5).contains(&neg.generate(&mut r)));
        }
    }

    #[test]
    fn union_recursive_flat_map() {
        let mut r = rng();
        let leaf = crate::prop_oneof![Just("a".to_owned()), Just("b".to_owned())];
        let rec = leaf.prop_recursive(2, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(x, y)| format!("({x}{y})"))
        });
        for _ in 0..50 {
            let v = rec.generate(&mut r);
            assert!(v.contains('a') || v.contains('b'));
        }
        let fm = (1usize..4).prop_flat_map(|n| vec![0i64..10; n]);
        for _ in 0..50 {
            let v = fm.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }
}
