//! String strategies from `&str` patterns.
//!
//! Supports the one pattern shape Starling's tests use — `[class]{m,n}`
//! (character class with literal chars and `a-z` ranges, bounded repeat) —
//! and falls back to treating the pattern as a literal otherwise.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let len = rng.usize_in(lo, hi + 1);
                (0..len)
                    .map(|_| chars[rng.usize_in(0, chars.len())])
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[class]{m,n}` / `[class]{n}` into (alphabet, min, max).
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            for c in (a as u32)..=(b as u32) {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let rep = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_owned();
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n: usize = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_repeat_shapes() {
        let mut rng = TestRng::for_test("string-pat");
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[ab%_]{0,8}".generate(&mut rng);
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| "ab%_".contains(c)), "{t}");
        }
    }

    #[test]
    fn literal_fallback() {
        let mut rng = TestRng::for_test("string-lit");
        assert_eq!("hello".generate(&mut rng), "hello");
    }
}
