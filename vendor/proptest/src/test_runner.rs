//! Deterministic test RNG and case-failure plumbing.

use std::fmt;

/// Number of cases per property test (`PROPTEST_CASES` env override,
/// default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG, seeded from the test's fully-qualified
/// name so distinct tests see distinct (but reproducible) streams.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// RNG from an explicit seed — used to replay regression seeds pinned
    /// in a `.proptest-regressions` file (see [`crate::persistence`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn usize_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = r.usize_in(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
