//! Offline stub of `rand` 0.8.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. Starling's workload generator needs only a seeded, reproducible
//! RNG with `gen_range` and `gen_bool`; this stub provides that surface over
//! a splitmix64 core. Streams differ from the real `rand`, but every use in
//! the repo treats the stream as an opaque deterministic function of the
//! seed, so that is fine.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleRange` Starling needs).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let lo = self.start as i128;
                let span = (self.end as i128) - lo;
                assert!(span > 0, "cannot sample from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let lo = *self.start() as i128;
                let span = (*self.end() as i128) - lo + 1;
                assert!(span > 0, "cannot sample from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-provided over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The standard seeded RNG of this stub: splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-5..5);
            assert_eq!(x, b.gen_range(-5..5));
            assert!((-5..5).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: usize = c.gen_range(0..3);
            assert!(v < 3);
            let w: i32 = c.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
