//! Offline stub of `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. Starling derives `Serialize` on its report types purely as a
//! forward-compatibility marker (nothing serializes them yet); this stub
//! provides a marker trait with the same name so those derives and bounds
//! compile unchanged. Swapping the real `serde` back in later requires no
//! source changes — only removing the `[patch.crates-io]` entry.

/// Marker stand-in for `serde::Serialize`.
///
/// Derivable via `#[derive(Serialize)]` (see the sibling `serde_derive`
/// stub), and usable as a bound. It has no methods: no serializer backend
/// exists in this offline build.
pub trait Serialize {}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

// Impls for common std types so manual `T: Serialize` bounds over
// containers keep working if introduced later.
macro_rules! impl_marker {
    ($($t:ty),* $(,)?) => { $(impl Serialize for $t {})* };
}
impl_marker!(
    bool, char, str, String, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32,
    f64
);

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
