//! Offline stub of `serde_derive`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. Starling only
//! uses `#[derive(Serialize)]` as a forward-compatibility marker on plain
//! (non-generic) report types, so this stub emits the corresponding marker
//! impl and nothing else.

use proc_macro::{TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` marker impl for a non-generic
/// `struct`/`enum`/`union`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the type name: the identifier following `struct`/`enum`/`union`.
fn type_name(ts: TokenStream) -> String {
    let mut iter = ts.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("derive(Serialize): could not find a type name in the input")
}
